// Package blocksvc is the networked face of the block store: a versioned,
// length-prefixed binary wire protocol, a multi-session server that fronts
// one shared store.MemCache (cross-session singleflight, per-session
// view-driven prefetch, admission control with load shedding), and a
// RemoteReader client implementing store.BlockReader and
// store.BatchBlockReader so ooc.Runtime drives a remote store unmodified.
//
// # Wire format
//
// Every message is one frame: a 4-byte little-endian payload length, a
// 1-byte message type, then the payload. A connection opens with
// hello/welcome (magic + protocol version negotiation; the welcome carries
// the served volume's geometry and a server-assigned session id), after
// which the client sends read requests and view updates:
//
//	hello   c→s  magic u32, version u16
//	welcome s→c  version u16, session u64, res 3×u32, block 3×u32,
//	             variable u32, blocks u32, storeVersion u32,
//	             heartbeatMillis u32 (0 = liveness disabled)
//	read    c→s  req u64, deadlineMillis u32, n u32, n×u32 block ids
//	view    c→s  camera position 3×f64 (no response; drives server prefetch)
//	blocks  s→c  req u64, firstIdx u32, n u16, then per block:
//	             status u8 [+ nbytes u32, payload, crc32c u32 when OK]
//	done    s→c  req u64 (every requested index has been answered)
//	shed    s→c  req u64 (request refused by admission control; retryable)
//	error   s→c  message string (fatal protocol error; connection closes)
//	ping    ↔    token u64 (liveness probe; either side may send)
//	pong    ↔    token u64 (echo of a received ping's token)
//	goaway  s→c  drainMillis u32 (server is draining: finish what is on the
//	             wire, then take new work elsewhere)
//
// Responses stream: the server answers a read with a sequence of blocks
// frames — one per merged run of consecutive results — and a final done.
// Block payloads are raw little-endian float32 voxels guarded by a CRC32C
// so in-transit corruption is detected at the client and classified as a
// retryable checksum fault.
//
// # Liveness and lifecycle
//
// Protocol v3 adds heartbeats and graceful drain. The welcome advertises
// the server's heartbeat interval; from then on each side sends a ping at
// that cadence whenever its end is otherwise quiet and arms a read
// deadline of twice the interval, so a dead or wedged peer — one that
// stops producing any frames, not just pongs — is detected within
// 2×interval and its session torn down instead of leaking. GOAWAY is the
// server's drain announcement: requests already on the wire are served,
// after which the connection will close; a failover-aware client shifts
// new work to a replica.
//
// # Fault classes over the wire
//
// Per-block status bytes carry the faultio classification across the
// network, so the client can rebuild an error that answers errors.Is
// exactly like the server-side original: transient faults stay retryable,
// permanent and on-disk checksum faults stay permanent, and a shed request
// maps to ErrShed wrapped as transient (retry later is the intended
// response).
package blocksvc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/faultio"
	"repro/internal/grid"
)

// Protocol identity. The version is negotiated at hello/welcome: a server
// refuses a client whose version it does not speak, with msgError.
// Version 3 added liveness (ping/pong + welcome heartbeat field) and
// drain (goaway); there was no released version 2.
const (
	protoMagic   uint32 = 0x62737663 // "bsvc"
	ProtoVersion uint16 = 3
)

// Message types.
const (
	msgHello   byte = 1
	msgWelcome byte = 2
	msgRead    byte = 3
	msgView    byte = 4
	msgBlocks  byte = 5
	msgDone    byte = 6
	msgShed    byte = 7
	msgError   byte = 8
	msgPing    byte = 9
	msgPong    byte = 10
	msgGoaway  byte = 11
)

// maxFrameBytes bounds any single frame so a corrupt length prefix cannot
// make either side allocate unboundedly.
const maxFrameBytes = 64 << 20

// frameHeaderSize is the fixed prefix of every frame: length + type.
const frameHeaderSize = 5

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrShed marks a request refused by the server's admission control. It is
// always delivered wrapped as a transient fault: the server is alive but
// over capacity, and retrying after backoff is exactly what the client's
// existing retry policy does.
var ErrShed = errors.New("blocksvc: shed by server admission control")

// blockStatus is the per-block result class carried over the wire.
type blockStatus uint8

const (
	statusOK            blockStatus = 0
	statusTransient     blockStatus = 1 // retryable server-side fault
	statusPermanent     blockStatus = 2 // not retryable (bad id, media loss)
	statusChecksum      blockStatus = 3 // on-disk rot at the server: permanent
	statusChecksumRetry blockStatus = 4 // corruption in transit to the server: transient
	statusShed          blockStatus = 5 // admission control refused the work
	statusCanceled      blockStatus = 6 // request context ended server-side
)

// statusOf classifies a server-side read error for the wire.
func statusOf(err error) blockStatus {
	switch {
	case err == nil:
		return statusOK
	case errors.Is(err, faultio.ErrChecksum):
		if faultio.Retryable(err) {
			return statusChecksumRetry
		}
		return statusChecksum
	case errors.Is(err, ErrShed):
		return statusShed
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return statusCanceled
	case faultio.Retryable(err):
		return statusTransient
	default:
		return statusPermanent
	}
}

// blockErr rebuilds a client-side error for a non-OK status, preserving the
// faultio classification so retry policies behave identically against a
// remote store and a local one.
func blockErr(st blockStatus, id grid.BlockID) error {
	switch st {
	case statusOK:
		return nil
	case statusTransient:
		return fmt.Errorf("blocksvc: block %d failed at server: %w", id, faultio.ErrTransient)
	case statusPermanent:
		return fmt.Errorf("blocksvc: block %d lost at server: %w", id, faultio.ErrPermanent)
	case statusChecksum:
		return fmt.Errorf("blocksvc: block %d rotten at server: %w",
			id, faultio.Permanent(faultio.ErrChecksum))
	case statusChecksumRetry:
		return fmt.Errorf("blocksvc: block %d corrupted in server transit: %w",
			id, faultio.Transient(faultio.ErrChecksum))
	case statusShed:
		return fmt.Errorf("blocksvc: block %d: %w", id, faultio.Transient(ErrShed))
	case statusCanceled:
		return fmt.Errorf("blocksvc: block %d canceled at server: %w", id, faultio.ErrTransient)
	default:
		return fmt.Errorf("blocksvc: block %d: unknown status %d: %w", id, st, faultio.ErrPermanent)
	}
}

// writeFrame emits one frame. The caller flushes any buffering.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("blocksvc: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, rejecting oversized length prefixes.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("blocksvc: frame length %d exceeds limit", n)
	}
	payload, err := readPayload(r, int(n))
	if err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// readChunk is the largest buffer readPayload commits to before any payload
// bytes have actually arrived.
const readChunk = 1 << 20

// readPayload reads exactly n declared bytes. Payloads up to readChunk get
// one exact allocation — the hot path, since real frames are bounded by
// ResponseRunBytes-sized runs. Larger declared lengths are read in chunks
// with the buffer growing only as data arrives, so a corrupt or hostile
// length prefix costs at most one chunk of memory, never the full declared
// maxFrameBytes.
func readPayload(r io.Reader, n int) ([]byte, error) {
	if n <= readChunk {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	payload := make([]byte, 0, readChunk)
	for len(payload) < n {
		take := min(n-len(payload), readChunk)
		if cap(payload)-len(payload) < take {
			grown := make([]byte, len(payload), min(n, 2*cap(payload)+take))
			copy(grown, payload)
			payload = grown
		}
		m, err := io.ReadFull(r, payload[len(payload):len(payload)+take])
		payload = payload[:len(payload)+m]
		if err != nil {
			if err == io.EOF {
				// EOF between chunks is still mid-frame.
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return payload, nil
}

// enc appends fixed-width little-endian fields to a reusable buffer.
type enc struct{ b []byte }

func (e *enc) reset()       { e.b = e.b[:0] }
func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) raw(p []byte) { e.b = append(e.b, p...) }

// dec consumes fixed-width little-endian fields; a short buffer trips the
// bad flag instead of panicking, checked once at the end with ok().
type dec struct {
	b   []byte
	bad bool
}

func (d *dec) take(n int) []byte {
	if d.bad || len(d.b) < n {
		d.bad = true
		return nil
	}
	p := d.b[:n]
	d.b = d.b[n:]
	return p
}

func (d *dec) u8() byte {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *dec) u16() uint16 {
	p := d.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (d *dec) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// ok reports whether every field decoded and the payload was fully
// consumed (trailing garbage is a protocol error too).
func (d *dec) ok() bool { return !d.bad && len(d.b) == 0 }
