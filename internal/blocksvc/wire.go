// Package blocksvc is the networked face of the block store: a versioned,
// length-prefixed binary wire protocol, a multi-session server that fronts
// one shared store.MemCache (cross-session singleflight, per-session
// view-driven prefetch, admission control with load shedding), and a
// RemoteReader client implementing store.BlockReader and
// store.BatchBlockReader so ooc.Runtime drives a remote store unmodified.
//
// # Wire format
//
// Every message is one frame: a 4-byte little-endian payload length, a
// 1-byte message type, then the payload. A connection opens with
// hello/welcome (magic + protocol version negotiation; the welcome carries
// the served volume's geometry and a server-assigned session id), after
// which the client sends read requests and view updates:
//
//	hello   c→s  magic u32, version u16 [, caps u32 when version ≥ 4]
//	welcome s→c  version u16, session u64, res 3×u32, block 3×u32,
//	             variable u32, blocks u32, storeVersion u32,
//	             heartbeatMillis u32 (0 = liveness disabled)
//	             [, caps u32, maxRequests u32 when version ≥ 4]
//	read    c→s  req u64, deadlineMillis u32, n u32, n×u32 block ids
//	view    c→s  camera position 3×f64 (no response; drives server prefetch)
//	blocks  s→c  req u64, firstIdx u32, n u16, then per block:
//	             v3: status u8 [+ nbytes u32, payload, crc32c u32 when OK]
//	             v4: status u8 [+ codec u8, then
//	                 raw:   nbytes u32, payload, crc32c u32
//	                 flate: rawBytes u32, wireBytes u32, compressed payload,
//	                        crc32c u32 (over the compressed bytes)  when OK]
//	done    s→c  req u64 (every requested index has been answered)
//	shed    s→c  req u64 (request refused by admission control; retryable)
//	error   s→c  message string (fatal protocol error; connection closes)
//	ping    ↔    token u64 (liveness probe; either side may send)
//	pong    ↔    token u64 (echo of a received ping's token)
//	goaway  s→c  drainMillis u32 (server is draining: finish what is on the
//	             wire, then take new work elsewhere)
//	topology s→c shard.Map binary encoding (capShard sessions only): an
//	             epoch-bumped cluster topology; clients adopt strictly
//	             higher epochs and re-route pending work
//
// Responses stream: the server answers a read with a sequence of blocks
// frames — one per merged run of consecutive results — and a final done.
// Block payloads are raw little-endian float32 voxels guarded by a CRC32C
// so in-transit corruption is detected at the client and classified as a
// retryable checksum fault.
//
// # Protocol v4: pipelining and entropy-aware compression
//
// The req field has always tagged responses back to their request; v4 makes
// that tagging load-bearing: a client may keep several tagged read requests
// in flight on one connection (up to the welcome's maxRequests) and the
// server's responses interleave at frame granularity, demuxed client-side
// by req. v4 also negotiates an optional wire codec via the hello/welcome
// caps bits (capCompress): when both sides advertise it, the server may
// DEFLATE-compress individual block payloads — choosing blocks by entropy,
// since the paper's T_important already knows which blocks are low-entropy
// ambient data that compresses extremely well — and says so in a per-block
// codec byte. A compressed block carries its decoded size first, which the
// client validates against the block geometry before allocating, so a lying
// size header cannot over-allocate. A v3 peer negotiates the old framing
// exactly as before; both sides stay bidirectionally compatible.
//
// # Liveness and lifecycle
//
// Protocol v3 adds heartbeats and graceful drain. The welcome advertises
// the server's heartbeat interval; from then on each side sends a ping at
// that cadence whenever its end is otherwise quiet and arms a read
// deadline of twice the interval, so a dead or wedged peer — one that
// stops producing any frames, not just pongs — is detected within
// 2×interval and its session torn down instead of leaking. GOAWAY is the
// server's drain announcement: requests already on the wire are served,
// after which the connection will close; a failover-aware client shifts
// new work to a replica.
//
// # Sharded clusters
//
// capShard (v4) turns a set of servers into a consistent-hash cluster.
// A cluster-mode server appends its shard.Map (length-prefixed) to the
// welcome when both sides advertise capShard; the client routes each block
// to its ring owner from then on. Topology changes travel as topology
// frames carrying the full epoch-bumped map. A block requested from a
// node that does not own it is answered with statusRedirect plus the
// node's epoch — never served — so cross-node cache duplication cannot
// happen silently; peers without capShard get statusTransient instead,
// which their ordinary retry path handles. Non-cluster servers send no
// map, and the client behaves exactly as before: one shard, N replicas.
//
// # Fault classes over the wire
//
// Per-block status bytes carry the faultio classification across the
// network, so the client can rebuild an error that answers errors.Is
// exactly like the server-side original: transient faults stay retryable,
// permanent and on-disk checksum faults stay permanent, and a shed request
// maps to ErrShed wrapped as transient (retry later is the intended
// response).
package blocksvc

import (
	"compress/flate"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
	"unsafe"

	"repro/internal/faultio"
	"repro/internal/grid"
)

// Protocol identity. The version is negotiated at hello/welcome: the server
// answers in the client's version when it speaks it (ProtoVersionMin through
// ProtoVersion) and refuses anything else with msgError. Version 3 added
// liveness (ping/pong + welcome heartbeat field) and drain (goaway); there
// was no released version 2. Version 4 added capability negotiation,
// pipelined tagged requests, and the per-block wire codec.
const (
	protoMagic      uint32 = 0x62737663 // "bsvc"
	ProtoVersion    uint16 = 4
	ProtoVersionMin uint16 = 3
)

// Capability bits exchanged in the v4 hello/welcome. A capability is in
// effect only when both sides advertise it.
const (
	capCompress uint32 = 1 << 0 // per-block DEFLATE wire codec
	capShard    uint32 = 1 << 1 // sharded topology: welcome map, topology pushes, redirects
)

// clientCaps is what this client implementation advertises.
const clientCaps = capCompress | capShard

// Per-block payload codecs (v4 blocks frames).
const (
	codecRaw   byte = 0 // little-endian float32 voxels, as in v3
	codecFlate byte = 1 // DEFLATE-compressed little-endian float32 voxels
)

// Message types.
const (
	msgHello   byte = 1
	msgWelcome byte = 2
	msgRead    byte = 3
	msgView    byte = 4
	msgBlocks  byte = 5
	msgDone    byte = 6
	msgShed    byte = 7
	msgError   byte = 8
	msgPing    byte = 9
	msgPong    byte = 10
	msgGoaway  byte = 11
	// msgTopology (s→c, capShard sessions only) pushes an epoch-bumped
	// shard map: payload is one shard.Map in its binary encoding. Clients
	// adopt strictly higher epochs and re-route pending work.
	msgTopology byte = 12
)

// maxFrameBytes bounds any single frame so a corrupt length prefix cannot
// make either side allocate unboundedly.
const maxFrameBytes = 64 << 20

// frameHeaderSize is the fixed prefix of every frame: length + type.
const frameHeaderSize = 5

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrShed marks a request refused by the server's admission control. It is
// always delivered wrapped as a transient fault: the server is alive but
// over capacity, and retrying after backoff is exactly what the client's
// existing retry policy does.
var ErrShed = errors.New("blocksvc: shed by server admission control")

// blockStatus is the per-block result class carried over the wire.
type blockStatus uint8

const (
	statusOK            blockStatus = 0
	statusTransient     blockStatus = 1 // retryable server-side fault
	statusPermanent     blockStatus = 2 // not retryable (bad id, media loss)
	statusChecksum      blockStatus = 3 // on-disk rot at the server: permanent
	statusChecksumRetry blockStatus = 4 // corruption in transit to the server: transient
	statusShed          blockStatus = 5 // admission control refused the work
	statusCanceled      blockStatus = 6 // request context ended server-side
	// statusRedirect answers a block this node does not own under its
	// current shard map. The entry carries the node's topology epoch (u64)
	// so a stale client knows to refresh before re-routing. Only sent to
	// capShard sessions; other peers get statusTransient instead.
	statusRedirect blockStatus = 7
)

// statusOf classifies a server-side read error for the wire.
func statusOf(err error) blockStatus {
	switch {
	case err == nil:
		return statusOK
	case errors.Is(err, faultio.ErrChecksum):
		if faultio.Retryable(err) {
			return statusChecksumRetry
		}
		return statusChecksum
	case errors.Is(err, ErrShed):
		return statusShed
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return statusCanceled
	case faultio.Retryable(err):
		return statusTransient
	default:
		return statusPermanent
	}
}

// redirectError is the client-side form of statusRedirect: the addressed
// node does not own the block under its topology (whose epoch rides
// along). The router consumes these internally and re-routes; one that
// escapes to a caller (a non-sharded client against a cluster node) is a
// transient fault — retrying after the topology converges is correct.
type redirectError struct {
	id    grid.BlockID
	epoch uint64
}

func (e *redirectError) Error() string {
	return fmt.Sprintf("blocksvc: block %d not owned by addressed shard (epoch %d): %s",
		e.id, e.epoch, faultio.ErrTransient)
}

func (e *redirectError) Unwrap() error { return faultio.ErrTransient }

// blockErr rebuilds a client-side error for a non-OK status, preserving the
// faultio classification so retry policies behave identically against a
// remote store and a local one.
func blockErr(st blockStatus, id grid.BlockID) error {
	switch st {
	case statusOK:
		return nil
	case statusTransient:
		return fmt.Errorf("blocksvc: block %d failed at server: %w", id, faultio.ErrTransient)
	case statusPermanent:
		return fmt.Errorf("blocksvc: block %d lost at server: %w", id, faultio.ErrPermanent)
	case statusChecksum:
		return fmt.Errorf("blocksvc: block %d rotten at server: %w",
			id, faultio.Permanent(faultio.ErrChecksum))
	case statusChecksumRetry:
		return fmt.Errorf("blocksvc: block %d corrupted in server transit: %w",
			id, faultio.Transient(faultio.ErrChecksum))
	case statusShed:
		return fmt.Errorf("blocksvc: block %d: %w", id, faultio.Transient(ErrShed))
	case statusCanceled:
		return fmt.Errorf("blocksvc: block %d canceled at server: %w", id, faultio.ErrTransient)
	case statusRedirect:
		return &redirectError{id: id}
	default:
		return fmt.Errorf("blocksvc: block %d: unknown status %d: %w", id, st, faultio.ErrPermanent)
	}
}

// writeFrame emits one frame. The caller flushes any buffering.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("blocksvc: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, rejecting oversized length prefixes.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("blocksvc: frame length %d exceeds limit", n)
	}
	payload, err := readPayload(r, int(n))
	if err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// readChunk is the largest buffer readPayload commits to before any payload
// bytes have actually arrived.
const readChunk = 1 << 20

// readPayload reads exactly n declared bytes. Payloads up to readChunk get
// one exact allocation — the hot path, since real frames are bounded by
// ResponseRunBytes-sized runs. Larger declared lengths are read in chunks
// with the buffer growing only as data arrives, so a corrupt or hostile
// length prefix costs at most one chunk of memory, never the full declared
// maxFrameBytes.
func readPayload(r io.Reader, n int) ([]byte, error) {
	if n <= readChunk {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	payload := make([]byte, 0, readChunk)
	for len(payload) < n {
		take := min(n-len(payload), readChunk)
		if cap(payload)-len(payload) < take {
			grown := make([]byte, len(payload), min(n, 2*cap(payload)+take))
			copy(grown, payload)
			payload = grown
		}
		m, err := io.ReadFull(r, payload[len(payload):len(payload)+take])
		payload = payload[:len(payload)+m]
		if err != nil {
			if err == io.EOF {
				// EOF between chunks is still mid-frame.
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return payload, nil
}

// enc appends fixed-width little-endian fields to a reusable buffer.
type enc struct{ b []byte }

func (e *enc) reset()       { e.b = e.b[:0] }
func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) raw(p []byte) { e.b = append(e.b, p...) }

// dec consumes fixed-width little-endian fields; a short buffer trips the
// bad flag instead of panicking, checked once at the end with ok().
type dec struct {
	b   []byte
	bad bool
}

func (d *dec) take(n int) []byte {
	if d.bad || len(d.b) < n {
		d.bad = true
		return nil
	}
	p := d.b[:n]
	d.b = d.b[n:]
	return p
}

func (d *dec) u8() byte {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *dec) u16() uint16 {
	p := d.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (d *dec) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// ok reports whether every field decoded and the payload was fully
// consumed (trailing garbage is a protocol error too).
func (d *dec) ok() bool { return !d.bad && len(d.b) == 0 }

// encPool recycles frame-staging encoders between requests: the server's
// run encoder and the client's request writer both draw from it, so a
// steady stream of frames reuses a few grown buffers instead of regrowing
// staging per exchange. Capacity is naturally bounded by the largest run
// (ResponseRunBytes plus per-block overhead).
var encPool = sync.Pool{New: func() any { return new(enc) }}

func getEnc() *enc  { e := encPool.Get().(*enc); e.reset(); return e }
func putEnc(e *enc) { encPool.Put(e) }

// readFrameBuf reads one frame like readFrame but decodes into buf when its
// capacity suffices, so a long-lived reader loop amortizes its receive
// buffer across frames. Declared lengths beyond cap(buf) fall back to
// readPayload, preserving the chunked-growth bound against hostile length
// prefixes. The returned payload aliases buf (or the freshly grown buffer);
// the caller passes it back in as the next call's buf once done with it.
func readFrameBuf(r io.Reader, buf []byte) (byte, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("blocksvc: frame length %d exceeds limit", n)
	}
	if int(n) <= cap(buf) {
		payload := buf[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, err
		}
		return hdr[4], payload, nil
	}
	payload, err := readPayload(r, int(n))
	if err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// blocksIter walks a blocks frame's per-block entries without allocating.
// The client's demux loop and the fuzz target share it, so the parser that
// faces untrusted network input is exactly the code under fuzz. Wire is a
// view into the frame payload and is only valid until the next call.
type blocksIter struct {
	d     dec
	v4    bool
	Req   uint64
	First int
	N     int
	k     int

	Status blockStatus
	Codec  byte
	RawLen int    // declared decoded byte count (== len(Wire) for codecRaw)
	Wire   []byte // payload bytes as they appear on the wire
	Sum    uint32 // CRC32C over Wire
	Epoch  uint64 // topology epoch riding a statusRedirect entry
}

// blocksHeader parses a blocks frame's prelude; ok=false on a short payload.
func blocksHeader(payload []byte, v4 bool) (blocksIter, bool) {
	it := blocksIter{d: dec{b: payload}, v4: v4}
	it.Req = it.d.u64()
	it.First = int(it.d.u32())
	it.N = int(it.d.u16())
	if it.d.bad {
		return blocksIter{}, false
	}
	return it, true
}

// next advances to the next entry, returning false at the end of the frame
// or on a malformed entry — distinguish with done().
func (it *blocksIter) next() bool {
	if it.k >= it.N || it.d.bad {
		return false
	}
	it.k++
	it.Status = blockStatus(it.d.u8())
	it.Codec, it.Wire, it.Sum, it.RawLen, it.Epoch = codecRaw, nil, 0, 0, 0
	if it.Status == statusRedirect {
		it.Epoch = it.d.u64()
		return !it.d.bad
	}
	if it.Status != statusOK {
		return !it.d.bad
	}
	if it.v4 {
		it.Codec = it.d.u8()
	}
	switch it.Codec {
	case codecRaw:
		n := int(it.d.u32())
		it.RawLen = n
		it.Wire = it.d.take(n)
	case codecFlate:
		it.RawLen = int(it.d.u32())
		it.Wire = it.d.take(int(it.d.u32()))
	default:
		it.d.bad = true
	}
	it.Sum = it.d.u32()
	return !it.d.bad
}

// done reports whether the frame parsed cleanly: every declared entry
// consumed and nothing trailing.
func (it *blocksIter) done() bool { return it.k == it.N && it.d.ok() }

// hostLittleEndian gates the zero-copy float32↔byte fast paths: on a
// little-endian host the wire encoding is the in-memory encoding.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// f32leBytes returns vals' wire bytes as a view of the same memory on
// little-endian hosts, and nil elsewhere (callers fall back to a
// conversion loop). The view must not outlive the slice's next write.
func f32leBytes(vals []float32) []byte {
	if !hostLittleEndian || len(vals) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), len(vals)*4)
}

// appendF32LE appends vals' wire encoding to b: one bulk copy on
// little-endian hosts, a per-value conversion elsewhere.
func appendF32LE(b []byte, vals []float32) []byte {
	if raw := f32leBytes(vals); raw != nil {
		return append(b, raw...)
	}
	for _, v := range vals {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
	}
	return b
}

// copyF32LE decodes wire bytes into dst (len(src) must be 4*len(dst)):
// one bulk copy on little-endian hosts, a per-value conversion elsewhere.
func copyF32LE(dst []float32, src []byte) {
	if len(dst) == 0 {
		return
	}
	if hostLittleEndian {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), len(dst)*4), src)
		return
	}
	for j := range dst {
		dst[j] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*j:]))
	}
}

// flateLevel is the wire codec's compression setting: BestSpeed, because
// the codec is only applied to low-entropy blocks where even the fastest
// setting compresses extremely well.
const flateLevel = flate.BestSpeed

var flateWriterPool = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flateLevel)
	return w
}}

func getFlateWriter(w io.Writer) *flate.Writer {
	fw := flateWriterPool.Get().(*flate.Writer)
	fw.Reset(w)
	return fw
}

func putFlateWriter(fw *flate.Writer) { flateWriterPool.Put(fw) }
