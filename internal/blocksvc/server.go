package blocksvc

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/visibility"
)

// CompressionMode selects which blocks the server offers to DEFLATE on the
// wire when a v4 client negotiates capCompress.
type CompressionMode int

const (
	// CompressOff never compresses (the v3 wire behavior).
	CompressOff CompressionMode = iota
	// CompressLowEntropy compresses only blocks whose T_important entropy
	// score is below the threshold — the paper's ambient blocks, which
	// DEFLATE collapses at almost no CPU cost — and skips the high-entropy
	// blocks that would burn cycles for nothing. Requires Config.Imp.
	CompressLowEntropy
	// CompressAll compresses every OK block regardless of entropy (kept for
	// the ablation; the low-entropy policy beats it on mixed fields).
	CompressAll
)

// ParseCompressionMode maps the -wire-compress flag values.
func ParseCompressionMode(s string) (CompressionMode, error) {
	switch s {
	case "off":
		return CompressOff, nil
	case "low-entropy":
		return CompressLowEntropy, nil
	case "all":
		return CompressAll, nil
	}
	return CompressOff, fmt.Errorf("blocksvc: unknown compression mode %q (off, low-entropy, all)", s)
}

// Config describes what a Server serves and how hard it may be pushed.
type Config struct {
	// Cache is the shared block cache every session reads through. Its
	// singleflight miss path is what makes the server multi-session: N
	// sessions demanding one cold block cost exactly one backing read.
	Cache *store.MemCache
	// Grid is the served volume's block geometry (request validation and
	// per-request byte accounting).
	Grid *grid.Grid
	// Header is advertised to clients in the welcome message.
	Header store.Header

	// Vis and Imp enable per-session predictive prefetch: a client's view
	// updates are run through T_visible and the entropy threshold Sigma,
	// and the predicted high-entropy blocks are pulled into the shared
	// cache while the client renders. Nil disables prefetch.
	Vis   *visibility.Table
	Imp   *entropy.Table
	Sigma float64

	// Predict tunes the per-session trajectory predictor that extrapolates
	// recent view updates and feeds the *predicted* camera position into
	// T_visible, so prefetch warms the blocks of the position the camera
	// is about to occupy. The zero value selects the defaults documented
	// on camera.PredictorOptions.
	Predict camera.PredictorOptions
	// PredictOff disables trajectory extrapolation: prefetch then looks up
	// the last-seen camera position — the nearest-sample baseline — which
	// is exactly the behavior of a one-sample predictor history.
	PredictOff bool

	// MaxInflightBytes caps the bytes of block data being served across all
	// sessions at once; requests beyond it wait up to MaxQueueWait and are
	// then shed. A single request larger than the cap is shed immediately —
	// it could never be admitted (default 256 MiB).
	MaxInflightBytes int64
	// MaxSessionRequests caps one session's concurrently served requests;
	// excess requests are shed, keeping one greedy client from starving the
	// rest (default 8).
	MaxSessionRequests int
	// MaxQueueWait bounds how long a request may wait for admission before
	// being shed. The client's deadline, when sooner, wins (default 100ms).
	MaxQueueWait time.Duration
	// MaxBlocksPerRequest bounds one read request (default 65536); larger
	// requests are a protocol error.
	MaxBlocksPerRequest int
	// PrefetchQueue bounds each session's pending-prefetch queue; full
	// queues drop predictions rather than block (default 128).
	PrefetchQueue int
	// ResponseRunBytes is the target payload size of one blocks frame; the
	// response to a large read streams as a sequence of runs of roughly
	// this size (default 2 MiB).
	ResponseRunBytes int64
	// HandshakeTimeout bounds how long a fresh connection may take to send
	// its hello — and, symmetrically, how long the server will spend
	// writing the welcome to a peer that never drains its receive buffer
	// (default 10s).
	HandshakeTimeout time.Duration
	// Compression selects the wire codec policy for v4 clients that
	// negotiate capCompress; v3 clients always get raw payloads. The
	// default is CompressOff.
	Compression CompressionMode
	// CompressThreshold is the entropy score below which
	// CompressLowEntropy compresses a block; 0 means the median of Imp's
	// score distribution (resolved once at NewServer).
	CompressThreshold float64
	// ShardMap, when non-nil, runs the server in cluster mode: this node is
	// one shard of a consistent-hash cluster, admits only the blocks it
	// owns (answering others with a redirect carrying the current epoch,
	// or a transient fault for peers that did not negotiate capShard), and
	// advertises the topology in every capShard welcome. ShardID names
	// this node's shard in the map. Topology changes arrive through
	// UpdateShardMap and are pushed to connected capShard clients.
	ShardMap *shard.Map
	// ShardID is this node's shard identity within ShardMap. Required in
	// cluster mode.
	ShardID string

	// HeartbeatInterval is the liveness cadence advertised in the welcome:
	// each session pings the client at this interval and requires some
	// inbound frame within twice of it, so a dead or wedged peer is torn
	// down within 2×HeartbeatInterval instead of pinning its session and
	// per-session gauges forever. 0 means the 5s default; negative
	// disables liveness entirely.
	HeartbeatInterval time.Duration

	// Metrics, when non-nil, exposes the server's counters, admission-wait
	// histograms, and per-session in-flight gauges on the given registry
	// (names under "svc.", documented in DESIGN.md §9). Nil disables the
	// export; the ServerStats snapshot is unaffected either way.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxInflightBytes <= 0 {
		c.MaxInflightBytes = 256 << 20
	}
	if c.MaxSessionRequests <= 0 {
		c.MaxSessionRequests = 8
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = 100 * time.Millisecond
	}
	if c.MaxBlocksPerRequest <= 0 {
		c.MaxBlocksPerRequest = 65536
	}
	if c.PrefetchQueue <= 0 {
		c.PrefetchQueue = 128
	}
	if c.ResponseRunBytes <= 0 {
		c.ResponseRunBytes = 2 << 20
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 5 * time.Second
	}
	return c
}

// heartbeat returns the effective liveness interval: 0 when disabled.
func (c Config) heartbeat() time.Duration {
	if c.HeartbeatInterval < 0 {
		return 0
	}
	return c.HeartbeatInterval
}

// ServerStats counts server activity. Taken as one consistent snapshot
// under a single lock by Server.Snapshot.
type ServerStats struct {
	Sessions         int64 // connections that completed the handshake
	ActiveSessions   int64 // currently connected
	Requests         int64 // read requests admitted and served
	ShedRequests     int64 // read requests refused by admission control
	Blocks           int64 // blocks answered (any status)
	BlocksOK         int64 // blocks answered with payloads
	BlocksFailed     int64 // blocks answered with fault statuses
	BytesSent        int64 // payload bytes shipped
	ViewUpdates      int64 // view messages received
	PrefetchIssued   int64
	PrefetchExecuted int64
	PrefetchFailed   int64
	PrefetchDropped  int64
	// PrefetchHits counts demand-served blocks that a session's prefetch
	// had already pulled into the shared cache before the demand arrived —
	// each prefetched block is credited at most once, on its first demand.
	PrefetchHits int64

	// Predict* count view updates by the trajectory model that produced
	// the prefetch position: hovering (dwell), straight-line (linear),
	// orbit/zoom about the center (angular), or too little history (last —
	// the nearest-sample fallback).
	PredictDwell   int64
	PredictLinear  int64
	PredictAngular int64
	PredictLast    int64
	HeartbeatsSent int64 // pings sent by session liveness loops
	DeadPeers      int64 // sessions torn down by an expired idle deadline
	GoawaysSent    int64 // drain announcements delivered

	CompressedBlocks int64 // blocks shipped DEFLATE-compressed
	CompressSkipped  int64 // candidates sent raw (didn't shrink, or high entropy)
	CompressBytesIn  int64 // raw payload bytes of compressed blocks
	CompressBytesOut int64 // wire bytes of compressed blocks

	Redirects      int64 // blocks answered "not owned by this shard" (cluster mode)
	TopologyPushes int64 // topology frames delivered to capShard sessions
}

// Server serves block reads to many concurrent sessions from one shared
// cache. Start it with Serve (once per listener); stop it with Close.
type Server struct {
	cfg    Config
	sem    *byteSem
	m      *serverMetrics
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	sessions  map[*session]struct{}
	nextID    uint64
	closed    bool
	draining  bool

	// activeReqs counts read requests currently being served across all
	// sessions; Drain waits for it to hit zero.
	activeReqs atomic.Int64

	// topo is the adopted cluster topology, nil outside cluster mode.
	// Swapped whole by UpdateShardMap; each request captures one snapshot
	// at admission so its byte accounting and ownership answers agree.
	topo atomic.Pointer[serverTopology]

	// zthr is the resolved CompressThreshold (CompressLowEntropy only).
	zthr float64

	statsMu sync.Mutex
	stats   ServerStats
}

// NewServer validates the config and returns a server ready to Serve.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Cache == nil {
		return nil, fmt.Errorf("blocksvc: nil cache")
	}
	if cfg.Grid == nil {
		return nil, fmt.Errorf("blocksvc: nil grid")
	}
	if cfg.Vis != nil && cfg.Imp == nil {
		return nil, fmt.Errorf("blocksvc: prefetch needs an importance table")
	}
	if cfg.Compression == CompressLowEntropy && cfg.Imp == nil {
		return nil, fmt.Errorf("blocksvc: entropy-aware compression needs an importance table")
	}
	zthr := cfg.CompressThreshold
	if cfg.Compression == CompressLowEntropy && zthr == 0 {
		zthr = cfg.Imp.ThresholdForQuantile(0.5)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		sem:       newByteSem(cfg.MaxInflightBytes),
		ctx:       ctx,
		cancel:    cancel,
		listeners: make(map[net.Listener]struct{}),
		sessions:  make(map[*session]struct{}),
		zthr:      zthr,
	}
	if cfg.ShardMap != nil {
		if err := cfg.ShardMap.Validate(); err != nil {
			cancel()
			return nil, fmt.Errorf("blocksvc: shard map: %w", err)
		}
		if cfg.ShardID == "" {
			cancel()
			return nil, fmt.Errorf("blocksvc: cluster mode needs a shard id")
		}
		m := cfg.ShardMap.Clone()
		self := m.ShardIndex(cfg.ShardID)
		if self < 0 {
			cancel()
			return nil, fmt.Errorf("blocksvc: shard id %q not in the shard map", cfg.ShardID)
		}
		s.topo.Store(&serverTopology{m: m, ring: m.Ring(), self: self})
	} else if cfg.ShardID != "" {
		cancel()
		return nil, fmt.Errorf("blocksvc: shard id without a shard map")
	}
	s.m = newServerMetrics(s, cfg.Metrics)
	return s, nil
}

// serverTopology is one adopted cluster topology: the map, its ring, and
// this node's position in it (-1 when the node has been removed — it then
// owns nothing and redirects everything).
type serverTopology struct {
	m    *shard.Map
	ring *shard.Ring
	self int
}

// owns reports whether this node is the block's owner under t.
func (t *serverTopology) owns(id grid.BlockID) bool {
	return t.self >= 0 && t.ring.OwnerBlock(id) == t.self
}

// notOwnedError marks a block the addressed shard does not own under the
// given epoch; sendRun encodes it as a redirect entry for capShard peers.
type notOwnedError struct{ epoch uint64 }

func (e *notOwnedError) Error() string {
	return fmt.Sprintf("blocksvc: block not owned by this shard (epoch %d): %s",
		e.epoch, faultio.ErrTransient)
}

func (e *notOwnedError) Unwrap() error { return faultio.ErrTransient }

// UpdateShardMap adopts a newer cluster topology: the map is validated,
// must carry a higher epoch than the current one, and takes effect for
// every request admitted afterwards. Connected capShard sessions get the
// map pushed as a topology frame so their routers re-route live traffic,
// and cache entries this node no longer owns are evicted immediately —
// their memory goes back to the recycler instead of aging out. A node
// absent from the new map keeps serving redirects until its clients leave.
func (s *Server) UpdateShardMap(m *shard.Map) error {
	if s.topo.Load() == nil {
		return fmt.Errorf("blocksvc: not in cluster mode")
	}
	if err := m.Validate(); err != nil {
		return fmt.Errorf("blocksvc: shard map: %w", err)
	}
	s.mu.Lock() // serialize concurrent updates so epoch compare-and-swap holds
	cur := s.topo.Load()
	if m.Epoch <= cur.m.Epoch {
		s.mu.Unlock()
		return fmt.Errorf("blocksvc: stale shard map epoch %d (have %d)", m.Epoch, cur.m.Epoch)
	}
	m = m.Clone()
	nt := &serverTopology{m: m, ring: m.Ring(), self: m.ShardIndex(s.cfg.ShardID)}
	s.topo.Store(nt)
	sessions := make([]*session, 0, len(s.sessions))
	for ss := range s.sessions {
		sessions = append(sessions, ss)
	}
	s.mu.Unlock()
	sent := broadcastTopology(sessions, m)
	s.count(func(st *ServerStats) { st.TopologyPushes += sent })
	s.cfg.Cache.EvictWhere(func(id grid.BlockID) bool { return !nt.owns(id) })
	return nil
}

// broadcastTopology pushes a topology frame to every session that
// negotiated capShard, returning how many deliveries succeeded.
func broadcastTopology(sessions []*session, m *shard.Map) int64 {
	raw := m.AppendBinary(nil)
	var sent int64
	for _, ss := range sessions {
		if ss.wireCaps.Load()&capShard == 0 {
			continue
		}
		if ss.send(msgTopology, raw) == nil {
			sent++
		}
	}
	return sent
}

// Serve accepts sessions on l until the server is closed (returns nil) or
// the listener fails. Multiple Serve calls on different listeners share
// the cache and admission budget.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("blocksvc: server closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.ctx.Err() != nil || s.stopping() {
				return nil
			}
			return err
		}
		s.StartSession(conn)
	}
}

// stopping reports whether the server has begun shutting down (drain or
// close), at which point accept errors are expected, not reportable.
func (s *Server) stopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed || s.draining
}

// StartSession runs one session over an already established connection
// (Serve calls it per accept; in-process transports call it directly). The
// connection is owned by the server afterwards. Returns false if the
// server is closed.
func (s *Server) StartSession(conn net.Conn) bool {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		conn.Close()
		return false
	}
	s.nextID++
	ss := &session{
		s:      s,
		id:     s.nextID,
		conn:   conn,
		br:     bufio.NewReaderSize(conn, 64<<10),
		bw:     bufio.NewWriterSize(conn, 256<<10),
		queued: make(map[grid.BlockID]struct{}),
	}
	ss.ctx, ss.cancel = context.WithCancel(s.ctx)
	if s.cfg.Vis != nil {
		ss.prefetchCh = make(chan grid.BlockID, s.cfg.PrefetchQueue)
		ss.prefetched = make(map[grid.BlockID]struct{})
		if !s.cfg.PredictOff {
			ss.pred = camera.NewPredictor(s.cfg.Predict)
		}
	}
	s.sessions[ss] = struct{}{}
	s.mu.Unlock()
	s.m.registerSession(ss)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ss.run()
	}()
	return true
}

// Drain gracefully retires the server: it stops accepting new sessions,
// announces GOAWAY to every connected client (failover-aware clients move
// new work to a replica), finishes the read requests already in flight,
// then closes. ctx bounds how long in-flight work may take — when it ends
// first, the remaining work is cut off by Close and Drain returns ctx's
// error; a full drain returns nil. Concurrent and repeat calls are safe;
// whichever Drain or Close finishes first wins.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	listeners := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		listeners = append(listeners, l)
	}
	sessions := make([]*session, 0, len(s.sessions))
	for ss := range s.sessions {
		sessions = append(sessions, ss)
	}
	s.mu.Unlock()

	for _, l := range listeners {
		l.Close()
	}
	// Cluster mode: announce the ownership handoff before GOAWAY, so this
	// node's capShard clients adopt the survivor topology and re-route new
	// work to the blocks' next owners instead of redialing a dying node.
	// (The operator's control plane distributes the same map to the
	// surviving servers; this push covers our own clients.)
	if t := s.topo.Load(); t != nil {
		handoff := t.m.WithoutShard(s.cfg.ShardID)
		if len(handoff.Shards) > 0 {
			sent := broadcastTopology(sessions, handoff)
			s.count(func(st *ServerStats) { st.TopologyPushes += sent })
		}
	}
	var drainMillis uint32
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			drainMillis = uint32(min(ms, math.MaxUint32))
		}
	}
	var e enc
	e.u32(drainMillis)
	sent := int64(0)
	for _, ss := range sessions {
		if ss.send(msgGoaway, e.b) == nil {
			sent++
		}
	}
	s.count(func(st *ServerStats) { st.GoawaysSent += sent })

	var err error
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for s.activeReqs.Load() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
		case <-tick.C:
			continue
		}
		break
	}
	s.Close()
	return err
}

// Close stops accepting, disconnects every session (canceling their
// in-flight reads), and waits for all session goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cancel()
	for l := range s.listeners {
		l.Close()
	}
	for ss := range s.sessions {
		ss.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Snapshot returns a consistent copy of the server counters under one lock.
func (s *Server) Snapshot() ServerStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

func (s *Server) count(f func(*ServerStats)) {
	s.statsMu.Lock()
	f(&s.stats)
	s.statsMu.Unlock()
}

// blockBytes returns the payload size of a block, 0 for invalid ids (they
// are answered with a permanent status, not read).
func (s *Server) blockBytes(id grid.BlockID) int64 {
	if int(id) < 0 || int(id) >= s.cfg.Grid.NumBlocks() {
		return 0
	}
	return s.cfg.Grid.VoxelCount(id) * 4
}

// session is one client connection: a reader loop that admits requests,
// goroutines serving them (responses serialized by writeMu), and an
// optional prefetch worker driven by the client's view updates.
type session struct {
	s      *Server
	id     uint64
	conn   net.Conn
	br     *bufio.Reader
	ctx    context.Context
	cancel context.CancelFunc

	writeMu sync.Mutex // serializes frames of concurrent responses
	bw      *bufio.Writer

	// Negotiated at handshake: the client's protocol version and the
	// capability bits both sides advertised. wireCaps mirrors caps for
	// readers outside the session's own goroutines (topology broadcasts);
	// it is published only after the welcome is on the wire, so a pushed
	// frame can never precede it.
	ver      uint16
	caps     uint32
	wireCaps atomic.Uint32
	// tcp is non-nil when the transport supports vectored writes; zeroCopy
	// additionally requires that cache buffers are immutable once handed
	// out (recycling off), so payload views on a net.Buffers can't be
	// rewritten mid-writev.
	tcp      *net.TCPConn
	zeroCopy bool

	reqWG sync.WaitGroup

	inflightMu sync.Mutex
	inflight   int

	// inflightBytes tracks the admitted bytes this session is currently
	// being served; exported as a per-session gauge while the session lives.
	inflightBytes atomic.Int64

	prefetchCh chan grid.BlockID // nil when prefetch is disabled
	queuedMu   sync.Mutex
	queued     map[grid.BlockID]struct{}
	// prefetched tracks blocks this session queued for prefetch whose first
	// demand has not arrived yet; serveRead resolves each entry once — a
	// cache hit credits PrefetchHits, a miss just clears the entry (the
	// prefetch was too late or already evicted). Guarded by queuedMu.
	prefetched map[grid.BlockID]struct{}

	// pred extrapolates this session's camera trajectory for prefetch; nil
	// when prefetch is disabled or Config.PredictOff is set. Touched only
	// by the session's read loop (handleView).
	pred *camera.Predictor

	// predViews / predHits back the per-session svc.predict.session.*
	// metrics registered while the session lives.
	predViews atomic.Int64
	predHits  atomic.Int64
}

// run owns the session lifecycle: handshake, read loop, teardown. On exit —
// client disconnect, protocol error, or server close — the session context
// is canceled first, so in-flight cache reads (and the store's merged-run
// loop beneath them) stop instead of pinning server I/O for a client that
// is gone.
func (ss *session) run() {
	defer func() {
		ss.cancel()
		ss.conn.Close()
		ss.reqWG.Wait()
		ss.s.mu.Lock()
		delete(ss.s.sessions, ss)
		ss.s.mu.Unlock()
		ss.s.m.unregisterSession(ss)
		ss.s.count(func(st *ServerStats) { st.ActiveSessions-- })
	}()
	// The deferred ActiveSessions-- must balance even when the handshake
	// fails, so count the connection up front.
	ss.s.count(func(st *ServerStats) { st.ActiveSessions++ })
	if err := ss.handshake(); err != nil {
		return
	}
	ss.s.count(func(st *ServerStats) { st.Sessions++ })
	if ss.prefetchCh != nil {
		ss.reqWG.Add(1)
		go ss.prefetchLoop()
	}
	hb := ss.s.cfg.heartbeat()
	if hb > 0 {
		ss.reqWG.Add(1)
		go ss.heartbeatLoop(hb)
	}
	var lastArm time.Time
	for {
		// Any inbound frame proves the peer is alive; requiring one within
		// ~2×heartbeat bounds how long a dead client can pin this session.
		// Re-arming the deadline per frame allocates a timer per demand
		// batch, so refresh only once half the heartbeat has elapsed —
		// keeping at least 1.5×hb of slack.
		if hb > 0 {
			if now := time.Now(); now.Sub(lastArm) > hb/2 {
				ss.conn.SetReadDeadline(now.Add(2 * hb))
				lastArm = now
			}
		}
		typ, payload, err := readFrame(ss.br)
		if err != nil {
			if hb > 0 && errors.Is(err, os.ErrDeadlineExceeded) && ss.ctx.Err() == nil {
				ss.s.count(func(st *ServerStats) { st.DeadPeers++ })
			}
			return // disconnect, torn frame, or dead peer: tear the session down
		}
		switch typ {
		case msgRead:
			if !ss.handleRead(payload) {
				return
			}
		case msgView:
			if !ss.handleView(payload) {
				return
			}
		case msgPing:
			token, ok := decodeToken(payload)
			if !ok {
				ss.fail("bad ping")
				return
			}
			var e enc
			e.u64(token)
			ss.send(msgPong, e.b)
		case msgPong:
			if _, ok := decodeToken(payload); !ok {
				ss.fail("bad pong")
				return
			}
			// The frame's arrival was the point; tokens are not matched.
		default:
			ss.fail(fmt.Sprintf("unexpected message type %d", typ))
			return
		}
	}
}

// heartbeatLoop pings the client at the liveness cadence so an otherwise
// idle client has inbound traffic to answer (its own read deadline) and
// this session produces the frames the client's deadline wants to see.
func (ss *session) heartbeatLoop(interval time.Duration) {
	defer ss.reqWG.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var token uint64
	for {
		select {
		case <-ss.ctx.Done():
			return
		case <-tick.C:
			token++
			var e enc
			e.u64(token)
			if ss.send(msgPing, e.b) != nil {
				return
			}
			ss.s.count(func(st *ServerStats) { st.HeartbeatsSent++ })
		}
	}
}

// handshake validates the client hello and answers with the session id,
// served geometry, and liveness cadence. Both directions are bounded by
// HandshakeTimeout: the read deadline covers a client that never says
// hello, the write deadline covers a slow-loris peer that connects and
// never drains its receive buffer — without it the welcome write blocks
// and pins this goroutine forever.
func (ss *session) handshake() error {
	deadline := time.Now().Add(ss.s.cfg.HandshakeTimeout)
	ss.conn.SetReadDeadline(deadline)
	ss.conn.SetWriteDeadline(deadline)
	typ, payload, err := readFrame(ss.br)
	if err != nil {
		return err
	}
	hello, ok := decodeHello(payload)
	if typ != msgHello || !ok || hello.Magic != protoMagic {
		ss.fail("bad hello")
		return fmt.Errorf("blocksvc: bad hello")
	}
	if hello.Version < ProtoVersionMin || hello.Version > ProtoVersion {
		ss.fail(fmt.Sprintf("protocol version %d unsupported (server speaks %d-%d)",
			hello.Version, ProtoVersionMin, ProtoVersion))
		return fmt.Errorf("blocksvc: version mismatch")
	}
	// Answer in the client's version: a v3 client gets the exact v3 welcome
	// and wire framing it has always seen; a v4 client additionally gets the
	// intersected capability bits and its pipelining allowance.
	ss.ver = hello.Version
	serverCaps := uint32(0)
	if ss.s.cfg.Compression != CompressOff {
		serverCaps |= capCompress
	}
	topo := ss.s.topo.Load()
	if topo != nil {
		serverCaps |= capShard
	}
	ss.caps = hello.Caps & serverCaps
	ss.tcp, _ = ss.conn.(*net.TCPConn)
	ss.zeroCopy = ss.tcp != nil && hostLittleEndian && !ss.s.cfg.Cache.RecyclingEnabled()
	h := ss.s.cfg.Header
	var e enc
	e.u16(ss.ver)
	e.u64(ss.id)
	e.u32(uint32(h.Res.X))
	e.u32(uint32(h.Res.Y))
	e.u32(uint32(h.Res.Z))
	e.u32(uint32(h.Block.X))
	e.u32(uint32(h.Block.Y))
	e.u32(uint32(h.Block.Z))
	e.u32(uint32(h.Variable))
	e.u32(uint32(h.Blocks))
	e.u32(uint32(h.Version))
	e.u32(uint32(ss.s.cfg.heartbeat() / time.Millisecond))
	if ss.ver >= 4 {
		e.u32(ss.caps)
		e.u32(uint32(ss.s.cfg.MaxSessionRequests))
		if ss.caps&capShard != 0 {
			// Advertise the cluster topology, length-prefixed, so the
			// client becomes a router before its first read. Plain-v4 and
			// v3 welcomes stay byte-identical to what they always were.
			raw := topo.m.AppendBinary(nil)
			e.u32(uint32(len(raw)))
			e.raw(raw)
		}
	}
	if err := ss.send(msgWelcome, e.b); err != nil {
		return err
	}
	ss.wireCaps.Store(ss.caps)
	ss.conn.SetReadDeadline(time.Time{})
	ss.conn.SetWriteDeadline(time.Time{})
	return nil
}

// send writes one frame under the write lock and flushes it.
func (ss *session) send(typ byte, payload []byte) error {
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	if err := writeFrame(ss.bw, typ, payload); err != nil {
		return err
	}
	return ss.bw.Flush()
}

// fail reports a fatal protocol error to the client; the caller closes the
// session.
func (ss *session) fail(msg string) {
	ss.send(msgError, []byte(msg))
}

// handleRead admits one read request and serves it on its own goroutine
// (requests pipeline; responses interleave at frame granularity, keyed by
// request id). Returns false on a protocol error.
func (ss *session) handleRead(payload []byte) bool {
	msg, ok := decodeRead(payload, ss.s.cfg.MaxBlocksPerRequest)
	if !ok {
		ss.fail("bad read request")
		return false
	}
	// One topology snapshot per request: byte accounting here and the
	// ownership answers in serveRead must agree even if the map swaps
	// mid-request. Blocks this shard does not own are answered with a
	// 9-byte redirect and never touch the cache, so they cost the
	// admission budget nothing.
	topo := ss.s.topo.Load()
	var bytes int64
	for _, id := range msg.IDs {
		if topo != nil && !topo.owns(id) {
			continue
		}
		bytes += ss.s.blockBytes(id)
	}

	// Per-session cap: shed rather than queue a greedy client's backlog.
	ss.inflightMu.Lock()
	if ss.inflight >= ss.s.cfg.MaxSessionRequests {
		ss.inflightMu.Unlock()
		ss.shed(msg.Req)
		return true
	}
	ss.inflight++
	ss.inflightMu.Unlock()

	ss.reqWG.Add(1)
	ss.s.activeReqs.Add(1) // counted before the goroutine starts so Drain can't miss it
	go func() {
		defer ss.reqWG.Done()
		defer ss.s.activeReqs.Add(-1)
		defer func() {
			ss.inflightMu.Lock()
			ss.inflight--
			ss.inflightMu.Unlock()
		}()
		ss.serveRead(msg.Req, msg.IDs, bytes, msg.DeadlineMillis, topo)
	}()
	return true
}

// shed refuses one request with a retryable status.
func (ss *session) shed(req uint64) {
	ss.s.count(func(st *ServerStats) { st.ShedRequests++ })
	var e enc
	e.u64(req)
	ss.send(msgShed, e.b)
}

// serveRead admits the request against the global in-flight byte budget,
// reads through the shared cache in bounded runs, and streams the results.
// Deadline-aware shedding: the request waits for admission at most
// MaxQueueWait (or the client's own deadline, when sooner) and is then
// refused with a retryable shed status instead of queueing unboundedly. A
// request larger than the whole budget can never be admitted and is shed
// immediately.
func (ss *session) serveRead(req uint64, ids []grid.BlockID, bytes int64, deadlineMillis uint32, topo *serverTopology) {
	reqCtx := ss.ctx
	var cancel context.CancelFunc
	if deadlineMillis > 0 {
		reqCtx, cancel = context.WithTimeout(reqCtx, time.Duration(deadlineMillis)*time.Millisecond)
		defer cancel()
	}

	if bytes > ss.s.cfg.MaxInflightBytes {
		ss.shed(req)
		return
	}
	admitStart := time.Now()
	var err error
	if !ss.s.sem.TryAcquire(bytes) {
		admitCtx, admitCancel := context.WithTimeout(reqCtx, ss.s.cfg.MaxQueueWait)
		err = ss.s.sem.Acquire(admitCtx, bytes)
		admitCancel()
	}
	wait := time.Since(admitStart).Nanoseconds()
	if err != nil {
		if ss.ctx.Err() != nil {
			return // session is gone; nobody is listening
		}
		ss.s.m.shedWait.Observe(wait)
		ss.shed(req)
		return
	}
	ss.s.m.queueWait.Observe(wait)
	ss.inflightBytes.Add(bytes)
	defer func() {
		ss.inflightBytes.Add(-bytes)
		ss.s.sem.Release(bytes)
	}()
	ss.s.count(func(st *ServerStats) { st.Requests++ })

	// Serve and stream in runs of roughly ResponseRunBytes: results reach
	// the client as they are produced and one request never stages the
	// whole response in memory. Staging is pooled across requests and
	// sessions, so the steady state regrows nothing. Each concurrently
	// served request owns its own scratch — sessions pipeline.
	rs := getRunScratch()
	defer putRunScratch(rs)
	e := &rs.e
	idx := 0
	for idx < len(ids) {
		runEnd := idx
		var runBytes int64
		for runEnd < len(ids) && runEnd-idx < 65535 {
			var b int64
			if topo == nil || topo.owns(ids[runEnd]) {
				b = ss.s.blockBytes(ids[runEnd])
			}
			if runEnd > idx && runBytes+b > ss.s.cfg.ResponseRunBytes {
				break
			}
			runBytes += b
			runEnd++
		}
		run := ids[idx:runEnd]
		var vals [][]float32
		var hit []bool
		var errs []error
		if topo == nil {
			vals, hit, errs = ss.s.cfg.Cache.GetBatch(reqCtx, run)
		} else {
			vals, hit, errs = ss.serveRunSharded(reqCtx, run, topo)
		}
		ss.notePrefetchHits(run, hit, errs)
		if !ss.sendRun(rs, req, idx, run, vals, errs) {
			return // write failed: connection is torn, stop serving
		}
		idx = runEnd
	}
	e.reset()
	e.u64(req)
	ss.send(msgDone, e.b)
}

// errNotOwnedPlain answers a non-capShard (v3 or plain-v4) client asking a
// cluster node for a block it does not own. Those clients cannot decode the
// redirect's epoch payload, so they get an ordinary retryable status and
// their existing failover machinery finds another node.
var errNotOwnedPlain = fmt.Errorf("blocksvc: block not owned by this shard: %w", faultio.ErrTransient)

// serveRunSharded answers one run on a cluster node: only owned blocks go
// through the shared cache (preserving the per-shard singleflight
// invariant — a non-owned request never triggers a backing read here), and
// the rest are answered in place with a redirect carrying the topology
// epoch the decision was made under.
func (ss *session) serveRunSharded(ctx context.Context, run []grid.BlockID, topo *serverTopology) ([][]float32, []bool, []error) {
	vals := make([][]float32, len(run))
	hit := make([]bool, len(run))
	errs := make([]error, len(run))
	owned := make([]grid.BlockID, 0, len(run))
	pos := make([]int, 0, len(run))
	for i, id := range run {
		if topo.owns(id) {
			owned = append(owned, id)
			pos = append(pos, i)
			continue
		}
		if ss.caps&capShard != 0 {
			errs[i] = &notOwnedError{epoch: topo.m.Epoch}
		} else {
			errs[i] = errNotOwnedPlain
		}
	}
	if len(owned) > 0 {
		ov, oh, oe := ss.s.cfg.Cache.GetBatch(ctx, owned)
		for k, i := range pos {
			vals[i] = ov[k]
			hit[i] = oh[k]
			errs[i] = oe[k]
		}
	}
	return vals, hit, errs
}

// notePrefetchHits resolves the prefetch attribution of one demand run:
// every block this session had queued for prefetch is settled on its first
// demand — served from the cache it counts as a prefetch hit, missed it
// counts as nothing (the prefetch was too late or already evicted). Either
// way the entry is cleared, so revisits of a warm block can't inflate the
// hit ratio.
func (ss *session) notePrefetchHits(run []grid.BlockID, hit []bool, errs []error) {
	if ss.prefetched == nil {
		return
	}
	var hits int64
	ss.queuedMu.Lock()
	for i, id := range run {
		if _, ok := ss.prefetched[id]; !ok {
			continue
		}
		delete(ss.prefetched, id)
		if hit[i] && errs[i] == nil {
			hits++
		}
	}
	ss.queuedMu.Unlock()
	if hits > 0 {
		ss.predHits.Add(hits)
		ss.s.count(func(st *ServerStats) { st.PrefetchHits += hits })
	}
}

// compressBlock reports whether the compression policy selects this block.
func (ss *session) compressBlock(id grid.BlockID) bool {
	switch ss.s.cfg.Compression {
	case CompressAll:
		return true
	case CompressLowEntropy:
		return ss.s.cfg.Imp.Score(id) < ss.s.zthr
	}
	return false
}

// sliceWriter adapts a reusable byte slice to io.Writer for the pooled
// flate encoder.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// runScratch is everything one in-flight request needs to encode its
// response runs: frame staging, flate output, and the writev assembly.
// Pooled per request — a session serves up to MaxSessionRequests
// concurrently, so this state cannot live on the session.
type runScratch struct {
	e    enc
	z    sliceWriter // flate output staging
	cuts []int       // sendRunVec: staging offsets where payloads insert
	pays [][]byte    // sendRunVec: payload views, parallel to cuts
	bufs net.Buffers // sendRunVec: assembled iovec
}

var runScratchPool = sync.Pool{New: func() any { return new(runScratch) }}

func getRunScratch() *runScratch {
	rs := runScratchPool.Get().(*runScratch)
	rs.e.reset()
	return rs
}

func putRunScratch(rs *runScratch) { runScratchPool.Put(rs) }

// flateInto compresses vals and appends a codecFlate entry to e when the
// compressed form is actually smaller, returning the wire byte count; a
// block that refuses to shrink leaves e untouched and falls back to raw.
func (rs *runScratch) flateInto(vals []float32) (int, bool) {
	rs.z.b = rs.z.b[:0]
	fw := getFlateWriter(&rs.z)
	var err error
	if src := f32leBytes(vals); src != nil {
		_, err = fw.Write(src)
	} else {
		var tmp [4]byte
		for _, v := range vals {
			binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(v))
			if _, err = fw.Write(tmp[:]); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = fw.Close()
	}
	putFlateWriter(fw)
	raw := len(vals) * 4
	wire := len(rs.z.b)
	if err != nil || wire >= raw {
		return 0, false
	}
	e := &rs.e
	e.u8(codecFlate)
	e.u32(uint32(raw))
	e.u32(uint32(wire))
	e.raw(rs.z.b)
	e.u32(crc32.Checksum(rs.z.b, castagnoli))
	return wire, true
}

// sendRun encodes one run of results as a blocks frame and ships it. v4
// sessions get a per-block codec byte and, when negotiated, DEFLATE
// payloads for the blocks the policy selects; on a TCP transport with
// cache recycling off, an uncompressed run skips payload staging entirely
// and goes out as one vectored write (sendRunVec).
func (ss *session) sendRun(rs *runScratch, req uint64, firstIdx int, ids []grid.BlockID,
	vals [][]float32, errs []error) bool {
	compress := ss.ver >= 4 && ss.caps&capCompress != 0 && ss.s.cfg.Compression != CompressOff
	if ss.zeroCopy && !compress {
		return ss.sendRunVec(rs, req, firstIdx, ids, vals, errs)
	}
	var okCount, failCount, redirects, sent int64
	var zBlocks, zSkipped, zIn, zOut int64
	e := &rs.e
	e.reset()
	e.u64(req)
	e.u32(uint32(firstIdx))
	e.u16(uint16(len(ids)))
	for i := range ids {
		if errs[i] != nil {
			if no, ok := errs[i].(*notOwnedError); ok {
				redirects++
				e.u8(byte(statusRedirect))
				e.u64(no.epoch)
				continue
			}
			failCount++
			e.u8(byte(statusOf(errs[i])))
			continue
		}
		okCount++
		e.u8(byte(statusOK))
		raw := len(vals[i]) * 4
		if compress && ss.compressBlock(ids[i]) {
			if wire, ok := rs.flateInto(vals[i]); ok {
				zBlocks++
				zIn += int64(raw)
				zOut += int64(wire)
				sent += int64(wire)
				continue
			}
			zSkipped++
		}
		if ss.ver >= 4 {
			e.u8(codecRaw)
		}
		off := len(e.b)
		e.u32(uint32(raw))
		e.b = appendF32LE(e.b, vals[i])
		e.u32(crc32.Checksum(e.b[off+4:], castagnoli))
		sent += int64(raw)
	}
	ss.s.count(func(st *ServerStats) {
		st.Blocks += int64(len(ids))
		st.BlocksOK += okCount
		st.BlocksFailed += failCount
		st.Redirects += redirects
		st.BytesSent += sent
		st.CompressedBlocks += zBlocks
		st.CompressSkipped += zSkipped
		st.CompressBytesIn += zIn
		st.CompressBytesOut += zOut
	})
	return ss.send(msgBlocks, e.b) == nil
}

// sendRunVec ships one run as a single vectored write: staging holds only
// the frame header and per-block metadata, while every OK payload segment
// is a view straight into the cache-owned float32 slice (immutable here —
// zeroCopy requires recycling off). One writev, zero payload copies.
func (ss *session) sendRunVec(rs *runScratch, req uint64, firstIdx int, ids []grid.BlockID,
	vals [][]float32, errs []error) bool {
	e := &rs.e
	var okCount, failCount, redirects, sent int64
	total := 8 + 4 + 2
	for i := range ids {
		total++ // status byte
		if errs[i] == nil {
			if ss.ver >= 4 {
				total++ // codec byte
			}
			total += 4 + len(vals[i])*4 + 4
		} else if _, ok := errs[i].(*notOwnedError); ok {
			total += 8 // redirect epoch
		}
	}
	if total > maxFrameBytes {
		return false
	}
	// Staging layout: frame header, then meta runs split at each payload
	// insertion point. Offsets (not views) are recorded during encoding so
	// staging growth can't invalidate anything.
	e.reset()
	e.u32(uint32(total))
	e.u8(msgBlocks)
	e.u64(req)
	e.u32(uint32(firstIdx))
	e.u16(uint16(len(ids)))
	cuts := rs.cuts[:0]
	pays := rs.pays[:0]
	for i := range ids {
		if errs[i] != nil {
			if no, ok := errs[i].(*notOwnedError); ok {
				redirects++
				e.u8(byte(statusRedirect))
				e.u64(no.epoch)
				continue
			}
			failCount++
			e.u8(byte(statusOf(errs[i])))
			continue
		}
		okCount++
		e.u8(byte(statusOK))
		if ss.ver >= 4 {
			e.u8(codecRaw)
		}
		pay := f32leBytes(vals[i])
		e.u32(uint32(len(pay)))
		cuts = append(cuts, len(e.b))
		pays = append(pays, pay)
		e.u32(crc32.Checksum(pay, castagnoli))
		sent += int64(len(pay))
	}
	bufs := rs.bufs[:0]
	prev := 0
	for k, cut := range cuts {
		bufs = append(bufs, e.b[prev:cut], pays[k])
		prev = cut
	}
	if prev < len(e.b) {
		bufs = append(bufs, e.b[prev:])
	}
	rs.cuts, rs.pays = cuts, pays
	ss.s.count(func(st *ServerStats) {
		st.Blocks += int64(len(ids))
		st.BlocksOK += okCount
		st.BlocksFailed += failCount
		st.Redirects += redirects
		st.BytesSent += sent
	})
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	if err := ss.bw.Flush(); err != nil {
		return false
	}
	// Keep the assembled array for the next run before WriteTo consumes the
	// local header.
	rs.bufs = bufs[:0]
	_, err := bufs.WriteTo(ss.tcp)
	return err == nil
}

// handleView updates the session's predicted working set: the client's
// camera position extends the session's trajectory history, the predictor
// extrapolates where the camera is heading, and the *predicted* position is
// run through T_visible and the entropy threshold — fresh high-entropy
// predictions are queued for prefetch into the shared cache. With the
// predictor off (or under one sample of history) the lookup position is the
// last-seen one, the nearest-sample baseline. Returns false on a protocol
// error.
func (ss *session) handleView(payload []byte) bool {
	pos, ok := decodeView(payload)
	if !ok {
		ss.fail("bad view update")
		return false
	}
	ss.s.count(func(st *ServerStats) { st.ViewUpdates++ })
	if ss.prefetchCh == nil {
		return true
	}
	target := pos
	if ss.pred != nil {
		ss.pred.Observe(pos)
		var kind camera.PredictKind
		target, kind = ss.pred.Predict()
		ss.predViews.Add(1)
		ss.s.count(func(st *ServerStats) {
			switch kind {
			case camera.PredictDwell:
				st.PredictDwell++
			case camera.PredictLinear:
				st.PredictLinear++
			case camera.PredictAngular:
				st.PredictAngular++
			default:
				st.PredictLast++
			}
		})
	}
	var issued, dropped int64
	topo := ss.s.topo.Load()
	for _, id := range ss.s.cfg.Vis.Predict(target) {
		// Cluster mode: prefetch only what this shard owns — warming a
		// non-owned block would break per-shard read accounting and be
		// evicted on the next topology change anyway.
		if topo != nil && !topo.owns(id) {
			continue
		}
		if ss.s.cfg.Imp.Score(id) <= ss.s.cfg.Sigma || ss.s.cfg.Cache.Contains(id) {
			continue
		}
		ss.queuedMu.Lock()
		if _, dup := ss.queued[id]; dup {
			ss.queuedMu.Unlock()
			continue
		}
		ss.queued[id] = struct{}{}
		ss.queuedMu.Unlock()
		select {
		case ss.prefetchCh <- id:
			issued++
			ss.queuedMu.Lock()
			ss.prefetched[id] = struct{}{}
			ss.queuedMu.Unlock()
		default:
			ss.queuedMu.Lock()
			delete(ss.queued, id)
			ss.queuedMu.Unlock()
			dropped++
		}
	}
	if issued > 0 || dropped > 0 {
		ss.s.count(func(st *ServerStats) {
			st.PrefetchIssued += issued
			st.PrefetchDropped += dropped
		})
	}
	return true
}

// prefetchLoop pulls predicted blocks into the shared cache. Prefetches
// coalesce with demand reads (the cache's singleflight), so a session
// prefetching a block another session is demanding costs nothing extra.
func (ss *session) prefetchLoop() {
	defer ss.reqWG.Done()
	for {
		select {
		case <-ss.ctx.Done():
			return
		case id := <-ss.prefetchCh:
			err := ss.s.cfg.Cache.Prefetch(ss.ctx, id)
			ss.queuedMu.Lock()
			delete(ss.queued, id)
			ss.queuedMu.Unlock()
			ss.s.count(func(st *ServerStats) {
				if err == nil {
					st.PrefetchExecuted++
				} else {
					st.PrefetchFailed++
				}
			})
		}
	}
}

// byteSem is a context-aware weighted semaphore with FIFO admission: the
// server's global in-flight byte budget.
type byteSem struct {
	capacity int64
	mu       sync.Mutex
	avail    int64
	waiters  []*semWaiter
}

type semWaiter struct {
	need  int64
	ready chan struct{}
}

func newByteSem(capacity int64) *byteSem {
	return &byteSem{capacity: capacity, avail: capacity}
}

// InUse reports the units currently acquired — the server's in-flight byte
// gauge.
func (s *byteSem) InUse() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity - s.avail
}

// TryAcquire takes n units only if they are free right now (and no earlier
// request is queued), so the uncontended hot path skips the deadline
// machinery Acquire's ctx needs.
func (s *byteSem) TryAcquire(n int64) bool {
	s.mu.Lock()
	ok := len(s.waiters) == 0 && s.avail >= n
	if ok {
		s.avail -= n
	}
	s.mu.Unlock()
	return ok
}

// Acquire takes n units, waiting FIFO behind earlier requests, until ctx
// ends. The caller must Release exactly n on success.
func (s *byteSem) Acquire(ctx context.Context, n int64) error {
	s.mu.Lock()
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		s.mu.Unlock()
		return nil
	}
	w := &semWaiter{need: n, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		granted := true
		for i, x := range s.waiters {
			if x == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				granted = false
				break
			}
		}
		s.mu.Unlock()
		if granted {
			// Release raced the cancellation and already granted us the
			// units; hand them back.
			s.Release(n)
		}
		return ctx.Err()
	}
}

// Release returns n units and admits as many queued waiters as now fit, in
// arrival order.
func (s *byteSem) Release(n int64) {
	s.mu.Lock()
	s.avail += n
	for len(s.waiters) > 0 && s.waiters[0].need <= s.avail {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.avail -= w.need
		close(w.ready)
	}
	s.mu.Unlock()
}
