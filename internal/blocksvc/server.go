package blocksvc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/visibility"
)

// Config describes what a Server serves and how hard it may be pushed.
type Config struct {
	// Cache is the shared block cache every session reads through. Its
	// singleflight miss path is what makes the server multi-session: N
	// sessions demanding one cold block cost exactly one backing read.
	Cache *store.MemCache
	// Grid is the served volume's block geometry (request validation and
	// per-request byte accounting).
	Grid *grid.Grid
	// Header is advertised to clients in the welcome message.
	Header store.Header

	// Vis and Imp enable per-session predictive prefetch: a client's view
	// updates are run through T_visible and the entropy threshold Sigma,
	// and the predicted high-entropy blocks are pulled into the shared
	// cache while the client renders. Nil disables prefetch.
	Vis   *visibility.Table
	Imp   *entropy.Table
	Sigma float64

	// MaxInflightBytes caps the bytes of block data being served across all
	// sessions at once; requests beyond it wait up to MaxQueueWait and are
	// then shed. A single request larger than the cap is shed immediately —
	// it could never be admitted (default 256 MiB).
	MaxInflightBytes int64
	// MaxSessionRequests caps one session's concurrently served requests;
	// excess requests are shed, keeping one greedy client from starving the
	// rest (default 8).
	MaxSessionRequests int
	// MaxQueueWait bounds how long a request may wait for admission before
	// being shed. The client's deadline, when sooner, wins (default 100ms).
	MaxQueueWait time.Duration
	// MaxBlocksPerRequest bounds one read request (default 65536); larger
	// requests are a protocol error.
	MaxBlocksPerRequest int
	// PrefetchQueue bounds each session's pending-prefetch queue; full
	// queues drop predictions rather than block (default 128).
	PrefetchQueue int
	// ResponseRunBytes is the target payload size of one blocks frame; the
	// response to a large read streams as a sequence of runs of roughly
	// this size (default 2 MiB).
	ResponseRunBytes int64
	// HandshakeTimeout bounds how long a fresh connection may take to send
	// its hello — and, symmetrically, how long the server will spend
	// writing the welcome to a peer that never drains its receive buffer
	// (default 10s).
	HandshakeTimeout time.Duration
	// HeartbeatInterval is the liveness cadence advertised in the welcome:
	// each session pings the client at this interval and requires some
	// inbound frame within twice of it, so a dead or wedged peer is torn
	// down within 2×HeartbeatInterval instead of pinning its session and
	// per-session gauges forever. 0 means the 5s default; negative
	// disables liveness entirely.
	HeartbeatInterval time.Duration

	// Metrics, when non-nil, exposes the server's counters, admission-wait
	// histograms, and per-session in-flight gauges on the given registry
	// (names under "svc.", documented in DESIGN.md §9). Nil disables the
	// export; the ServerStats snapshot is unaffected either way.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxInflightBytes <= 0 {
		c.MaxInflightBytes = 256 << 20
	}
	if c.MaxSessionRequests <= 0 {
		c.MaxSessionRequests = 8
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = 100 * time.Millisecond
	}
	if c.MaxBlocksPerRequest <= 0 {
		c.MaxBlocksPerRequest = 65536
	}
	if c.PrefetchQueue <= 0 {
		c.PrefetchQueue = 128
	}
	if c.ResponseRunBytes <= 0 {
		c.ResponseRunBytes = 2 << 20
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 5 * time.Second
	}
	return c
}

// heartbeat returns the effective liveness interval: 0 when disabled.
func (c Config) heartbeat() time.Duration {
	if c.HeartbeatInterval < 0 {
		return 0
	}
	return c.HeartbeatInterval
}

// ServerStats counts server activity. Taken as one consistent snapshot
// under a single lock by Server.Snapshot.
type ServerStats struct {
	Sessions         int64 // connections that completed the handshake
	ActiveSessions   int64 // currently connected
	Requests         int64 // read requests admitted and served
	ShedRequests     int64 // read requests refused by admission control
	Blocks           int64 // blocks answered (any status)
	BlocksOK         int64 // blocks answered with payloads
	BlocksFailed     int64 // blocks answered with fault statuses
	BytesSent        int64 // payload bytes shipped
	ViewUpdates      int64 // view messages received
	PrefetchIssued   int64
	PrefetchExecuted int64
	PrefetchFailed   int64
	PrefetchDropped  int64
	HeartbeatsSent   int64 // pings sent by session liveness loops
	DeadPeers        int64 // sessions torn down by an expired idle deadline
	GoawaysSent      int64 // drain announcements delivered
}

// Server serves block reads to many concurrent sessions from one shared
// cache. Start it with Serve (once per listener); stop it with Close.
type Server struct {
	cfg    Config
	sem    *byteSem
	m      *serverMetrics
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	sessions  map[*session]struct{}
	nextID    uint64
	closed    bool
	draining  bool

	// activeReqs counts read requests currently being served across all
	// sessions; Drain waits for it to hit zero.
	activeReqs atomic.Int64

	statsMu sync.Mutex
	stats   ServerStats
}

// NewServer validates the config and returns a server ready to Serve.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Cache == nil {
		return nil, fmt.Errorf("blocksvc: nil cache")
	}
	if cfg.Grid == nil {
		return nil, fmt.Errorf("blocksvc: nil grid")
	}
	if cfg.Vis != nil && cfg.Imp == nil {
		return nil, fmt.Errorf("blocksvc: prefetch needs an importance table")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		sem:       newByteSem(cfg.MaxInflightBytes),
		ctx:       ctx,
		cancel:    cancel,
		listeners: make(map[net.Listener]struct{}),
		sessions:  make(map[*session]struct{}),
	}
	s.m = newServerMetrics(s, cfg.Metrics)
	return s, nil
}

// Serve accepts sessions on l until the server is closed (returns nil) or
// the listener fails. Multiple Serve calls on different listeners share
// the cache and admission budget.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("blocksvc: server closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.ctx.Err() != nil || s.stopping() {
				return nil
			}
			return err
		}
		s.StartSession(conn)
	}
}

// stopping reports whether the server has begun shutting down (drain or
// close), at which point accept errors are expected, not reportable.
func (s *Server) stopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed || s.draining
}

// StartSession runs one session over an already established connection
// (Serve calls it per accept; in-process transports call it directly). The
// connection is owned by the server afterwards. Returns false if the
// server is closed.
func (s *Server) StartSession(conn net.Conn) bool {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		conn.Close()
		return false
	}
	s.nextID++
	ss := &session{
		s:      s,
		id:     s.nextID,
		conn:   conn,
		br:     bufio.NewReaderSize(conn, 64<<10),
		bw:     bufio.NewWriterSize(conn, 256<<10),
		queued: make(map[grid.BlockID]struct{}),
	}
	ss.ctx, ss.cancel = context.WithCancel(s.ctx)
	if s.cfg.Vis != nil {
		ss.prefetchCh = make(chan grid.BlockID, s.cfg.PrefetchQueue)
	}
	s.sessions[ss] = struct{}{}
	s.mu.Unlock()
	s.m.registerSession(ss)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ss.run()
	}()
	return true
}

// Drain gracefully retires the server: it stops accepting new sessions,
// announces GOAWAY to every connected client (failover-aware clients move
// new work to a replica), finishes the read requests already in flight,
// then closes. ctx bounds how long in-flight work may take — when it ends
// first, the remaining work is cut off by Close and Drain returns ctx's
// error; a full drain returns nil. Concurrent and repeat calls are safe;
// whichever Drain or Close finishes first wins.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	listeners := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		listeners = append(listeners, l)
	}
	sessions := make([]*session, 0, len(s.sessions))
	for ss := range s.sessions {
		sessions = append(sessions, ss)
	}
	s.mu.Unlock()

	for _, l := range listeners {
		l.Close()
	}
	var drainMillis uint32
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			drainMillis = uint32(min(ms, math.MaxUint32))
		}
	}
	var e enc
	e.u32(drainMillis)
	sent := int64(0)
	for _, ss := range sessions {
		if ss.send(msgGoaway, e.b) == nil {
			sent++
		}
	}
	s.count(func(st *ServerStats) { st.GoawaysSent += sent })

	var err error
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for s.activeReqs.Load() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
		case <-tick.C:
			continue
		}
		break
	}
	s.Close()
	return err
}

// Close stops accepting, disconnects every session (canceling their
// in-flight reads), and waits for all session goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cancel()
	for l := range s.listeners {
		l.Close()
	}
	for ss := range s.sessions {
		ss.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Snapshot returns a consistent copy of the server counters under one lock.
func (s *Server) Snapshot() ServerStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

func (s *Server) count(f func(*ServerStats)) {
	s.statsMu.Lock()
	f(&s.stats)
	s.statsMu.Unlock()
}

// blockBytes returns the payload size of a block, 0 for invalid ids (they
// are answered with a permanent status, not read).
func (s *Server) blockBytes(id grid.BlockID) int64 {
	if int(id) < 0 || int(id) >= s.cfg.Grid.NumBlocks() {
		return 0
	}
	return s.cfg.Grid.VoxelCount(id) * 4
}

// session is one client connection: a reader loop that admits requests,
// goroutines serving them (responses serialized by writeMu), and an
// optional prefetch worker driven by the client's view updates.
type session struct {
	s      *Server
	id     uint64
	conn   net.Conn
	br     *bufio.Reader
	ctx    context.Context
	cancel context.CancelFunc

	writeMu sync.Mutex // serializes frames of concurrent responses
	bw      *bufio.Writer

	reqWG sync.WaitGroup

	inflightMu sync.Mutex
	inflight   int

	// inflightBytes tracks the admitted bytes this session is currently
	// being served; exported as a per-session gauge while the session lives.
	inflightBytes atomic.Int64

	prefetchCh chan grid.BlockID // nil when prefetch is disabled
	queuedMu   sync.Mutex
	queued     map[grid.BlockID]struct{}
}

// run owns the session lifecycle: handshake, read loop, teardown. On exit —
// client disconnect, protocol error, or server close — the session context
// is canceled first, so in-flight cache reads (and the store's merged-run
// loop beneath them) stop instead of pinning server I/O for a client that
// is gone.
func (ss *session) run() {
	defer func() {
		ss.cancel()
		ss.conn.Close()
		ss.reqWG.Wait()
		ss.s.mu.Lock()
		delete(ss.s.sessions, ss)
		ss.s.mu.Unlock()
		ss.s.m.unregisterSession(ss)
		ss.s.count(func(st *ServerStats) { st.ActiveSessions-- })
	}()
	// The deferred ActiveSessions-- must balance even when the handshake
	// fails, so count the connection up front.
	ss.s.count(func(st *ServerStats) { st.ActiveSessions++ })
	if err := ss.handshake(); err != nil {
		return
	}
	ss.s.count(func(st *ServerStats) { st.Sessions++ })
	if ss.prefetchCh != nil {
		ss.reqWG.Add(1)
		go ss.prefetchLoop()
	}
	hb := ss.s.cfg.heartbeat()
	if hb > 0 {
		ss.reqWG.Add(1)
		go ss.heartbeatLoop(hb)
	}
	for {
		// Any inbound frame proves the peer is alive; requiring one within
		// 2×heartbeat bounds how long a dead client can pin this session.
		if hb > 0 {
			ss.conn.SetReadDeadline(time.Now().Add(2 * hb))
		}
		typ, payload, err := readFrame(ss.br)
		if err != nil {
			if hb > 0 && errors.Is(err, os.ErrDeadlineExceeded) && ss.ctx.Err() == nil {
				ss.s.count(func(st *ServerStats) { st.DeadPeers++ })
			}
			return // disconnect, torn frame, or dead peer: tear the session down
		}
		switch typ {
		case msgRead:
			if !ss.handleRead(payload) {
				return
			}
		case msgView:
			if !ss.handleView(payload) {
				return
			}
		case msgPing:
			token, ok := decodeToken(payload)
			if !ok {
				ss.fail("bad ping")
				return
			}
			var e enc
			e.u64(token)
			ss.send(msgPong, e.b)
		case msgPong:
			if _, ok := decodeToken(payload); !ok {
				ss.fail("bad pong")
				return
			}
			// The frame's arrival was the point; tokens are not matched.
		default:
			ss.fail(fmt.Sprintf("unexpected message type %d", typ))
			return
		}
	}
}

// heartbeatLoop pings the client at the liveness cadence so an otherwise
// idle client has inbound traffic to answer (its own read deadline) and
// this session produces the frames the client's deadline wants to see.
func (ss *session) heartbeatLoop(interval time.Duration) {
	defer ss.reqWG.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var token uint64
	for {
		select {
		case <-ss.ctx.Done():
			return
		case <-tick.C:
			token++
			var e enc
			e.u64(token)
			if ss.send(msgPing, e.b) != nil {
				return
			}
			ss.s.count(func(st *ServerStats) { st.HeartbeatsSent++ })
		}
	}
}

// handshake validates the client hello and answers with the session id,
// served geometry, and liveness cadence. Both directions are bounded by
// HandshakeTimeout: the read deadline covers a client that never says
// hello, the write deadline covers a slow-loris peer that connects and
// never drains its receive buffer — without it the welcome write blocks
// and pins this goroutine forever.
func (ss *session) handshake() error {
	deadline := time.Now().Add(ss.s.cfg.HandshakeTimeout)
	ss.conn.SetReadDeadline(deadline)
	ss.conn.SetWriteDeadline(deadline)
	typ, payload, err := readFrame(ss.br)
	if err != nil {
		return err
	}
	hello, ok := decodeHello(payload)
	if typ != msgHello || !ok || hello.Magic != protoMagic {
		ss.fail("bad hello")
		return fmt.Errorf("blocksvc: bad hello")
	}
	if hello.Version != ProtoVersion {
		ss.fail(fmt.Sprintf("protocol version %d unsupported (server speaks %d)",
			hello.Version, ProtoVersion))
		return fmt.Errorf("blocksvc: version mismatch")
	}
	h := ss.s.cfg.Header
	var e enc
	e.u16(ProtoVersion)
	e.u64(ss.id)
	e.u32(uint32(h.Res.X))
	e.u32(uint32(h.Res.Y))
	e.u32(uint32(h.Res.Z))
	e.u32(uint32(h.Block.X))
	e.u32(uint32(h.Block.Y))
	e.u32(uint32(h.Block.Z))
	e.u32(uint32(h.Variable))
	e.u32(uint32(h.Blocks))
	e.u32(uint32(h.Version))
	e.u32(uint32(ss.s.cfg.heartbeat() / time.Millisecond))
	if err := ss.send(msgWelcome, e.b); err != nil {
		return err
	}
	ss.conn.SetReadDeadline(time.Time{})
	ss.conn.SetWriteDeadline(time.Time{})
	return nil
}

// send writes one frame under the write lock and flushes it.
func (ss *session) send(typ byte, payload []byte) error {
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	if err := writeFrame(ss.bw, typ, payload); err != nil {
		return err
	}
	return ss.bw.Flush()
}

// fail reports a fatal protocol error to the client; the caller closes the
// session.
func (ss *session) fail(msg string) {
	ss.send(msgError, []byte(msg))
}

// handleRead admits one read request and serves it on its own goroutine
// (requests pipeline; responses interleave at frame granularity, keyed by
// request id). Returns false on a protocol error.
func (ss *session) handleRead(payload []byte) bool {
	msg, ok := decodeRead(payload, ss.s.cfg.MaxBlocksPerRequest)
	if !ok {
		ss.fail("bad read request")
		return false
	}
	var bytes int64
	for _, id := range msg.IDs {
		bytes += ss.s.blockBytes(id)
	}

	// Per-session cap: shed rather than queue a greedy client's backlog.
	ss.inflightMu.Lock()
	if ss.inflight >= ss.s.cfg.MaxSessionRequests {
		ss.inflightMu.Unlock()
		ss.shed(msg.Req)
		return true
	}
	ss.inflight++
	ss.inflightMu.Unlock()

	ss.reqWG.Add(1)
	ss.s.activeReqs.Add(1) // counted before the goroutine starts so Drain can't miss it
	go func() {
		defer ss.reqWG.Done()
		defer ss.s.activeReqs.Add(-1)
		defer func() {
			ss.inflightMu.Lock()
			ss.inflight--
			ss.inflightMu.Unlock()
		}()
		ss.serveRead(msg.Req, msg.IDs, bytes, msg.DeadlineMillis)
	}()
	return true
}

// shed refuses one request with a retryable status.
func (ss *session) shed(req uint64) {
	ss.s.count(func(st *ServerStats) { st.ShedRequests++ })
	var e enc
	e.u64(req)
	ss.send(msgShed, e.b)
}

// serveRead admits the request against the global in-flight byte budget,
// reads through the shared cache in bounded runs, and streams the results.
// Deadline-aware shedding: the request waits for admission at most
// MaxQueueWait (or the client's own deadline, when sooner) and is then
// refused with a retryable shed status instead of queueing unboundedly. A
// request larger than the whole budget can never be admitted and is shed
// immediately.
func (ss *session) serveRead(req uint64, ids []grid.BlockID, bytes int64, deadlineMillis uint32) {
	reqCtx := ss.ctx
	var cancel context.CancelFunc
	if deadlineMillis > 0 {
		reqCtx, cancel = context.WithTimeout(reqCtx, time.Duration(deadlineMillis)*time.Millisecond)
		defer cancel()
	}

	if bytes > ss.s.cfg.MaxInflightBytes {
		ss.shed(req)
		return
	}
	admitStart := time.Now()
	admitCtx, admitCancel := context.WithTimeout(reqCtx, ss.s.cfg.MaxQueueWait)
	err := ss.s.sem.Acquire(admitCtx, bytes)
	admitCancel()
	wait := time.Since(admitStart).Nanoseconds()
	if err != nil {
		if ss.ctx.Err() != nil {
			return // session is gone; nobody is listening
		}
		ss.s.m.shedWait.Observe(wait)
		ss.shed(req)
		return
	}
	ss.s.m.queueWait.Observe(wait)
	ss.inflightBytes.Add(bytes)
	defer func() {
		ss.inflightBytes.Add(-bytes)
		ss.s.sem.Release(bytes)
	}()
	ss.s.count(func(st *ServerStats) { st.Requests++ })

	// Serve and stream in runs of roughly ResponseRunBytes: results reach
	// the client as they are produced and one request never stages the
	// whole response in memory.
	var e enc
	idx := 0
	for idx < len(ids) {
		runEnd := idx
		var runBytes int64
		for runEnd < len(ids) && runEnd-idx < 65535 {
			b := ss.s.blockBytes(ids[runEnd])
			if runEnd > idx && runBytes+b > ss.s.cfg.ResponseRunBytes {
				break
			}
			runBytes += b
			runEnd++
		}
		run := ids[idx:runEnd]
		vals, _, errs := ss.s.cfg.Cache.GetBatch(reqCtx, run)
		if !ss.sendRun(&e, req, idx, run, vals, errs) {
			return // write failed: connection is torn, stop serving
		}
		idx = runEnd
	}
	var done enc
	done.u64(req)
	ss.send(msgDone, done.b)
}

// sendRun encodes one run of results as blocks frames and ships them.
func (ss *session) sendRun(e *enc, req uint64, firstIdx int, ids []grid.BlockID,
	vals [][]float32, errs []error) bool {
	var okCount, failCount, sent int64
	e.reset()
	e.u64(req)
	e.u32(uint32(firstIdx))
	e.u16(uint16(len(ids)))
	for i := range ids {
		if errs[i] != nil {
			failCount++
			e.u8(byte(statusOf(errs[i])))
			continue
		}
		okCount++
		e.u8(byte(statusOK))
		off := len(e.b)
		e.u32(uint32(len(vals[i]) * 4))
		for _, v := range vals[i] {
			e.u32(math.Float32bits(v))
		}
		e.u32(crc32.Checksum(e.b[off+4:], castagnoli))
		sent += int64(len(vals[i]) * 4)
	}
	ss.s.count(func(st *ServerStats) {
		st.Blocks += int64(len(ids))
		st.BlocksOK += okCount
		st.BlocksFailed += failCount
		st.BytesSent += sent
	})
	return ss.send(msgBlocks, e.b) == nil
}

// handleView updates the session's predicted working set: the client's
// camera position is run through T_visible and the entropy threshold, and
// fresh high-entropy predictions are queued for prefetch into the shared
// cache. Returns false on a protocol error.
func (ss *session) handleView(payload []byte) bool {
	pos, ok := decodeView(payload)
	if !ok {
		ss.fail("bad view update")
		return false
	}
	ss.s.count(func(st *ServerStats) { st.ViewUpdates++ })
	if ss.prefetchCh == nil {
		return true
	}
	var issued, dropped int64
	for _, id := range ss.s.cfg.Vis.Predict(pos) {
		if ss.s.cfg.Imp.Score(id) <= ss.s.cfg.Sigma || ss.s.cfg.Cache.Contains(id) {
			continue
		}
		ss.queuedMu.Lock()
		if _, dup := ss.queued[id]; dup {
			ss.queuedMu.Unlock()
			continue
		}
		ss.queued[id] = struct{}{}
		ss.queuedMu.Unlock()
		select {
		case ss.prefetchCh <- id:
			issued++
		default:
			ss.queuedMu.Lock()
			delete(ss.queued, id)
			ss.queuedMu.Unlock()
			dropped++
		}
	}
	if issued > 0 || dropped > 0 {
		ss.s.count(func(st *ServerStats) {
			st.PrefetchIssued += issued
			st.PrefetchDropped += dropped
		})
	}
	return true
}

// prefetchLoop pulls predicted blocks into the shared cache. Prefetches
// coalesce with demand reads (the cache's singleflight), so a session
// prefetching a block another session is demanding costs nothing extra.
func (ss *session) prefetchLoop() {
	defer ss.reqWG.Done()
	for {
		select {
		case <-ss.ctx.Done():
			return
		case id := <-ss.prefetchCh:
			err := ss.s.cfg.Cache.Prefetch(ss.ctx, id)
			ss.queuedMu.Lock()
			delete(ss.queued, id)
			ss.queuedMu.Unlock()
			ss.s.count(func(st *ServerStats) {
				if err == nil {
					st.PrefetchExecuted++
				} else {
					st.PrefetchFailed++
				}
			})
		}
	}
}

// byteSem is a context-aware weighted semaphore with FIFO admission: the
// server's global in-flight byte budget.
type byteSem struct {
	capacity int64
	mu       sync.Mutex
	avail    int64
	waiters  []*semWaiter
}

type semWaiter struct {
	need  int64
	ready chan struct{}
}

func newByteSem(capacity int64) *byteSem {
	return &byteSem{capacity: capacity, avail: capacity}
}

// InUse reports the units currently acquired — the server's in-flight byte
// gauge.
func (s *byteSem) InUse() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity - s.avail
}

// Acquire takes n units, waiting FIFO behind earlier requests, until ctx
// ends. The caller must Release exactly n on success.
func (s *byteSem) Acquire(ctx context.Context, n int64) error {
	s.mu.Lock()
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		s.mu.Unlock()
		return nil
	}
	w := &semWaiter{need: n, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		granted := true
		for i, x := range s.waiters {
			if x == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				granted = false
				break
			}
		}
		s.mu.Unlock()
		if granted {
			// Release raced the cancellation and already granted us the
			// units; hand them back.
			s.Release(n)
		}
		return ctx.Err()
	}
}

// Release returns n units and admits as many queued waiters as now fit, in
// arrival order.
func (s *byteSem) Release(n int64) {
	s.mu.Lock()
	s.avail += n
	for len(s.waiters) > 0 && s.waiters[0].need <= s.avail {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.avail -= w.need
		close(w.ready)
	}
	s.mu.Unlock()
}
