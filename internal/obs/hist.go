package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram over int64 values (typically
// nanoseconds or bytes). Observe is lock-free and allocation-free: one
// binary search over the bucket bounds plus a handful of atomic adds, so it
// can sit on the frame hot path. Quantiles are estimated at snapshot time
// by linear interpolation inside the bucket containing the requested rank;
// the error is bounded by that bucket's width.
//
// A nil Histogram ignores observations and snapshots as empty.
type Histogram struct {
	// bounds are ascending inclusive upper bounds; values above the last
	// bound land in an implicit overflow bucket.
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	count  atomic.Int64
	min    atomic.Int64 // valid only when count > 0
	max    atomic.Int64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds (copied). Nil or empty bounds get DurationBuckets.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets()
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// DurationBuckets is the default latency bucket layout: 1µs to ~134s in ×2
// steps (28 buckets) — fine enough to separate a 2ms demand wait from a
// 4ms one, small enough that a histogram is a few hundred bytes.
func DurationBuckets() []int64 {
	b := make([]int64, 28)
	v := int64(1000) // 1µs in ns
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Manual binary search (sort.Search's closure would cost an indirect
	// call per probe): find the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v > h.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// HistogramSnapshot summarizes a histogram at one instant.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// Snapshot copies the bucket counts once and derives count/sum/min/max and
// the three standard quantiles from that copy, so the quantiles are
// mutually consistent even while observations continue.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, Sum: h.sum.Load()}
	if total == 0 {
		return s
	}
	s.Min, s.Max = h.min.Load(), h.max.Load()
	s.P50 = h.quantileFrom(counts, total, s.Min, s.Max, 0.50)
	s.P95 = h.quantileFrom(counts, total, s.Min, s.Max, 0.95)
	s.P99 = h.quantileFrom(counts, total, s.Min, s.Max, 0.99)
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) of everything observed so
// far. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	return h.quantileFrom(counts, total, h.min.Load(), h.max.Load(), q)
}

// quantileFrom walks the copied bucket counts to the bucket holding rank
// ceil(q·total) and interpolates linearly inside it. The bucket's effective
// range is clipped to the observed [min, max], which tightens the estimate
// for the first and last occupied buckets (including the unbounded overflow
// bucket).
func (h *Histogram) quantileFrom(counts []int64, total int64, min, max int64, q float64) int64 {
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum < rank || c == 0 {
			continue
		}
		bLo := min
		if i > 0 && h.bounds[i-1] > bLo {
			bLo = h.bounds[i-1]
		}
		bHi := max
		if i < len(h.bounds) && h.bounds[i] < bHi {
			bHi = h.bounds[i]
		}
		if bHi < bLo {
			bHi = bLo
		}
		pos := float64(rank-(cum-c)) / float64(c) // (0, 1] within the bucket
		return bLo + int64(pos*float64(bHi-bLo))
	}
	return max
}
