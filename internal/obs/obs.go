// Package obs is the runtime observability layer: a dependency-free metrics
// registry (atomic counters, gauges, and fixed-bucket latency histograms
// with quantile snapshots) plus a frame-phase timer for the interactive
// loop's visibility → demand-wait → render → prefetch-issue breakdown.
//
// The design splits cost between the hot path and the snapshot path. Hot
// paths hold pre-resolved *Counter/*Gauge/*Histogram handles and update
// them with single atomic operations — no map lookups, no locks, no
// allocation. Components that already keep their own counters under a lock
// (the cache, the server) register pull-style func metrics instead, which
// cost nothing until someone asks for a Snapshot. Every handle method is
// nil-receiver-safe, so un-instrumented code paths pay one predictable
// branch.
//
// Snapshot returns a plain JSON-marshalable value; Handler serves it over
// HTTP for the vizserver debug endpoint.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter ignores updates and reads as 0.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (bytes in flight, open sessions).
// The zero value is ready to use; a nil Gauge ignores updates and reads 0.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// funcMetric is a pull-style metric evaluated at snapshot time.
type funcMetric struct {
	fn      func() int64
	counter bool // reported under counters rather than gauges
}

// Registry is a named collection of metrics. Methods are get-or-create and
// safe for concurrent use; a nil *Registry is a valid sink that returns nil
// handles (whose methods are no-ops), so instrumentation can be wired
// unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]funcMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]funcMetric),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later bounds are ignored). Bounds must be
// ascending; they are copied.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers a pull-style counter: fn is evaluated at snapshot
// time and reported under the snapshot's counters. The first registration
// of a name wins. fn must not call back into the registry.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.registerFunc(name, fn, true)
}

// GaugeFunc registers a pull-style gauge evaluated at snapshot time.
// The first registration of a name wins. fn must not call back into the
// registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.registerFunc(name, fn, false)
}

func (r *Registry) registerFunc(name string, fn func() int64, counter bool) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.funcs[name]; !ok {
		r.funcs[name] = funcMetric{fn: fn, counter: counter}
	}
}

// Unregister removes the named metric of any kind. Handles already held
// keep working; they just stop being reported. Used for per-session metrics
// whose owners come and go.
func (r *Registry) Unregister(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.counters, name)
	delete(r.gauges, name)
	delete(r.hists, name)
	delete(r.funcs, name)
}

// Snapshot is a point-in-time copy of every registered metric, shaped for
// JSON. Counter and gauge reads are individually atomic; the set as a whole
// is not a consistent cut (it is a debug surface, not an accounting ledger).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot evaluates func metrics and copies every value out.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	for name, f := range r.funcs {
		if f.counter {
			s.Counters[name] = f.fn()
		} else {
			s.Gauges[name] = f.fn()
		}
	}
	return s
}

// Names returns every registered metric name, sorted — handy for docs and
// tests that assert instrumentation coverage.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
