package obs

import "time"

// Phase identifies one span of the interactive loop. The paper's frame
// breakdown (and Eq. (6)'s prefetch-radius model) is stated in exactly
// these terms: decide what is visible, wait for demand fetches, render, and
// issue prefetch for the predicted vicinity while rendering proceeds.
type Phase int

const (
	// PhaseVisibility is the camera-to-visible-set computation (caller
	// side: the VisibleSet query before Frame is invoked).
	PhaseVisibility Phase = iota
	// PhaseDemandWait is the span from entering Frame until every visible
	// block's data is in hand (inline hits plus the demand pool's misses).
	PhaseDemandWait
	// PhaseRender is the caller consuming the frame's data.
	PhaseRender
	// PhasePrefetchIssue is prediction plus enqueueing of prefetch work —
	// the part of prefetch that runs on the frame path (execution is
	// asynchronous and deliberately untimed here).
	PhasePrefetchIssue

	numPhases
)

var phaseNames = [numPhases]string{
	"visibility_ns",
	"demand_wait_ns",
	"render_ns",
	"prefetch_issue_ns",
}

// String returns the phase's metric-name suffix.
func (p Phase) String() string {
	if p < 0 || p >= numPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// PhaseTimer owns one latency histogram per frame phase, registered as
// "<prefix>.<phase>_ns". A nil PhaseTimer hands out inert spans.
type PhaseTimer struct {
	h [numPhases]*Histogram
}

// NewPhaseTimer registers the per-phase histograms on r (nil r yields a
// timer whose spans are no-ops).
func NewPhaseTimer(r *Registry, prefix string) *PhaseTimer {
	t := &PhaseTimer{}
	for p := Phase(0); p < numPhases; p++ {
		t.h[p] = r.Histogram(prefix+"."+phaseNames[p], DurationBuckets())
	}
	return t
}

// Span is one in-progress phase measurement. It is a value type: beginning
// and ending a span allocates nothing.
type Span struct {
	h     *Histogram
	start time.Time
}

// Begin starts timing a phase; call End on the returned span.
func (t *PhaseTimer) Begin(p Phase) Span {
	if t == nil || p < 0 || p >= numPhases {
		return Span{}
	}
	return Span{h: t.h[p], start: time.Now()}
}

// End records the span's elapsed time. Safe on a zero Span.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.start).Nanoseconds())
	}
}

// Observe records an externally measured duration for a phase.
func (t *PhaseTimer) Observe(p Phase, d time.Duration) {
	if t == nil || p < 0 || p >= numPhases {
		return
	}
	t.h[p].Observe(d.Nanoseconds())
}

// Histogram returns the phase's underlying histogram (nil on a nil timer).
func (t *PhaseTimer) Histogram(p Phase) *Histogram {
	if t == nil || p < 0 || p >= numPhases {
		return nil
	}
	return t.h[p]
}
