package obs

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry as an indented JSON Snapshot — the body of
// the vizserver debug endpoint. It is safe to hit while the instrumented
// system runs at full speed: snapshotting copies counters atomically and
// never blocks a hot path.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
