package obs

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	if r.Counter("c") != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
	s := r.Snapshot()
	if s.Counters["c"] != 4 || s.Gauges["g"] != 7 {
		t.Errorf("snapshot = %+v", s)
	}
}

// TestNilSafety: every handle and the registry itself must be inert, not
// panicky, when nil — instrumented code never branches on "is obs wired?".
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter counted")
	}
	g := r.Gauge("x")
	g.Set(5)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge moved")
	}
	h := r.Histogram("x", nil)
	h.Observe(1)
	if h.Snapshot().Count != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram observed")
	}
	r.CounterFunc("x", func() int64 { return 1 })
	r.GaugeFunc("x", func() int64 { return 1 })
	r.Unregister("x")
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot non-empty")
	}
	var pt *PhaseTimer
	sp := pt.Begin(PhaseRender)
	sp.End()
	pt.Observe(PhaseRender, time.Second)
	Span{}.End()
}

func TestFuncMetricsAndUnregister(t *testing.T) {
	r := NewRegistry()
	v := int64(41)
	r.CounterFunc("pull.counter", func() int64 { return v })
	r.GaugeFunc("pull.gauge", func() int64 { return -v })
	r.CounterFunc("pull.counter", func() int64 { return 0 }) // first wins
	v = 42
	s := r.Snapshot()
	if s.Counters["pull.counter"] != 42 {
		t.Errorf("func counter = %d, want 42", s.Counters["pull.counter"])
	}
	if s.Gauges["pull.gauge"] != -42 {
		t.Errorf("func gauge = %d, want -42", s.Gauges["pull.gauge"])
	}
	r.Unregister("pull.counter")
	r.Unregister("pull.gauge")
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Errorf("unregistered metrics still reported: %+v", s)
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c", nil)
	r.GaugeFunc("d", func() int64 { return 0 })
	got := r.Names()
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

// exactQuantile is the reference the histogram estimate is judged against:
// the rank-ceil(q·n) order statistic, matching quantileFrom's rank rule.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(float64(len(sorted)) * q)
	if float64(rank) < float64(len(sorted))*q {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// bucketIndex mirrors Observe's bucket choice.
func bucketIndex(bounds []int64, v int64) int {
	i := sort.Search(len(bounds), func(i int) bool { return bounds[i] >= v })
	return i
}

// TestHistogramQuantileProperty is the histogram-correctness property test:
// over randomized (seeded) workloads of several shapes, the estimated
// p50/p95/p99 must land inside the bucket that contains the exact quantile
// (or an adjacent one when the exact value sits on a bucket edge) — i.e.
// the estimation error is bounded by the bucket width, never a rank error.
func TestHistogramQuantileProperty(t *testing.T) {
	bounds := DurationBuckets()
	type workload struct {
		name string
		gen  func(r *rand.Rand) int64
	}
	workloads := []workload{
		{"uniform", func(r *rand.Rand) int64 { return 1 + r.Int63n(2_000_000_000) }},
		{"exponential", func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 3e6) }},
		{"constant", func(r *rand.Rand) int64 { return 777_777 }},
		{"bimodal", func(r *rand.Rand) int64 {
			if r.Intn(10) == 0 {
				return 80_000_000 + r.Int63n(1_000_000)
			}
			return 50_000 + r.Int63n(5_000)
		}},
		{"tiny", func(r *rand.Rand) int64 { return r.Int63n(3) }},    // below the first bound
		{"huge", func(r *rand.Rand) int64 { return int64(1) << 60 }}, // overflow bucket
	}
	for _, w := range workloads {
		for seed := int64(1); seed <= 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			h := NewHistogram(bounds)
			n := 200 + rng.Intn(5000)
			values := make([]int64, n)
			for i := range values {
				values[i] = w.gen(rng)
				h.Observe(values[i])
			}
			sort.Slice(values, func(a, b int) bool { return values[a] < values[b] })
			snap := h.Snapshot()
			if snap.Count != int64(n) {
				t.Fatalf("%s/seed=%d: count = %d, want %d", w.name, seed, snap.Count, n)
			}
			if snap.Min != values[0] || snap.Max != values[n-1] {
				t.Fatalf("%s/seed=%d: min/max = %d/%d, want %d/%d",
					w.name, seed, snap.Min, snap.Max, values[0], values[n-1])
			}
			for _, tc := range []struct {
				q   float64
				est int64
			}{{0.50, snap.P50}, {0.95, snap.P95}, {0.99, snap.P99}} {
				exact := exactQuantile(values, tc.q)
				bi, be := bucketIndex(bounds, tc.est), bucketIndex(bounds, exact)
				if d := bi - be; d < -1 || d > 1 {
					t.Errorf("%s/seed=%d: q=%.2f estimate %d (bucket %d) vs exact %d (bucket %d)",
						w.name, seed, tc.q, tc.est, bi, exact, be)
				}
				if tc.est < snap.Min || tc.est > snap.Max {
					t.Errorf("%s/seed=%d: q=%.2f estimate %d outside observed [%d, %d]",
						w.name, seed, tc.q, tc.est, snap.Min, snap.Max)
				}
			}
		}
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines while
// snapshots are taken; run under -race by the race target. The final count
// must be exact — no lost updates.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	const (
		workers = 8
		perW    = 20000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent snapshotter
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				if s.Count > 0 && (s.P50 < s.Min || s.P50 > s.Max) {
					t.Errorf("mid-run p50 %d outside [%d, %d]", s.P50, s.Min, s.Max)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				h.Observe(rng.Int63n(1 << 40))
			}
		}(w)
	}
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	// Let the workers finish, then stop the snapshotter.
	deadline := time.After(30 * time.Second)
	for {
		s := h.Snapshot()
		if s.Count == workers*perW {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("count stuck at %d, want %d", s.Count, workers*perW)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-wgDone
	if got := h.Snapshot().Count; got != workers*perW {
		t.Errorf("final count = %d, want %d", got, workers*perW)
	}
}

func TestPhaseTimer(t *testing.T) {
	r := NewRegistry()
	pt := NewPhaseTimer(r, "test.phase")
	sp := pt.Begin(PhaseDemandWait)
	time.Sleep(time.Millisecond)
	sp.End()
	pt.Observe(PhaseRender, 5*time.Millisecond)
	s := r.Snapshot()
	dw := s.Histograms["test.phase.demand_wait_ns"]
	if dw.Count != 1 || dw.Max < int64(time.Millisecond)/2 {
		t.Errorf("demand-wait span not recorded: %+v", dw)
	}
	if s.Histograms["test.phase.render_ns"].Count != 1 {
		t.Error("render observation not recorded")
	}
	if pt.Histogram(PhaseRender) == nil {
		t.Error("phase histogram accessor nil")
	}
	if PhaseVisibility.String() != "visibility_ns" || Phase(99).String() != "unknown" {
		t.Error("phase names wrong")
	}
}

// TestHotPathAllocationFree pins the tentpole's overhead claim at the unit
// level: counter adds, histogram observes, and phase spans allocate nothing.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", nil)
	pt := NewPhaseTimer(r, "p")
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(123456)
		sp := pt.Begin(PhaseDemandWait)
		sp.End()
	}); n != 0 {
		t.Errorf("hot-path instrumentation allocates %.1f times per op", n)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache.hits").Add(7)
	r.Histogram("frame_ns", nil).Observe(1500)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["cache.hits"] != 7 {
		t.Errorf("served counters = %+v", s.Counters)
	}
	if h := s.Histograms["frame_ns"]; h.Count != 1 || h.P50 == 0 {
		t.Errorf("served histogram = %+v", h)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DurationBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 997)
	}
}

func BenchmarkPhaseSpan(b *testing.B) {
	pt := NewPhaseTimer(NewRegistry(), "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := pt.Begin(PhaseDemandWait)
		sp.End()
	}
}
