package main

import (
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// debugMux builds the opt-in debug endpoint: the live metrics snapshot as
// JSON at /debug/metrics plus the standard pprof handlers at /debug/pprof/.
// Shared by main (-debug-addr) and the e2e debug test.
func debugMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/metrics", obs.Handler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
