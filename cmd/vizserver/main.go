// Command vizserver serves a block store to remote visualization sessions
// over the blocksvc wire protocol: one shared in-memory cache fronts the
// checksummed block file, concurrent sessions' demand reads coalesce onto
// single backing reads, each session's camera view updates drive predictive
// prefetch into the shared cache, and admission control sheds load instead
// of queueing it unboundedly.
//
// Usage:
//
//	vizserver -addr 127.0.0.1:9123 -dataset 3d_ball -scale 0.25 -blocks 2048
//	          [-cache-frac 0.5] [-sigma-quantile 0.75] [-no-prefetch]
//	          [-max-inflight-mb 256] [-max-session-reqs 8] [-queue-wait 100ms]
//	          [-wire-compress off|low-entropy|all]
//	          [-heartbeat 5s] [-drain-timeout 5s]
//	          [-shard-id a -shard-map cluster.json]
//	          [-debug-addr 127.0.0.1:9124]
//	          [-fail-rate 0 -perm-frac 0 -corrupt-rate 0 -io-latency 0]
//
// Clients (vizsim -realio -remote addr) must be started with the same
// -dataset/-scale/-blocks so their geometry matches the served volume. The
// fault-injection flags put a deterministic injector between the file and
// the cache, so degraded-but-graceful behavior can be demonstrated across
// the wire. SIGINT/SIGTERM drain the server — stop accepting, announce
// GOAWAY, finish in-flight requests up to -drain-timeout — then print its
// counters; clients with a second replica fail over seamlessly.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/blocksvc"
	"repro/internal/cache"
	"repro/internal/entropy"
	"repro/internal/faultio"
	"repro/internal/obs"
	"repro/internal/radius"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9123", "listen address")
		dataset  = flag.String("dataset", "3d_ball", "dataset name (3d_ball, lifted_mix_frac, lifted_rr, climate)")
		scale    = flag.Float64("scale", 0.25, "dataset scale factor")
		blocks   = flag.Int("blocks", 2048, "approximate block count")
		vars     = flag.Int("climate-vars", 8, "climate variable count")
		angle    = flag.Float64("view-angle", 10, "full view angle for prefetch prediction, degrees")
		cacheFrc = flag.Float64("cache-frac", 0.5, "shared cache size as a fraction of the dataset")
		quantile = flag.Float64("sigma-quantile", 0.75, "entropy quantile below which blocks are not prefetched")
		noPre    = flag.Bool("no-prefetch", false, "disable server-side view-driven prefetch")

		maxMB   = flag.Int64("max-inflight-mb", 256, "admission: in-flight payload budget, MiB")
		maxReqs = flag.Int("max-session-reqs", 8, "admission: concurrent requests per session")
		maxWait = flag.Duration("queue-wait", 100*time.Millisecond, "admission: longest wait before a request is shed")

		wireComp = flag.String("wire-compress", "low-entropy",
			"block payload compression on the wire: off, low-entropy, or all")

		heartbeat = flag.Duration("heartbeat", 0, "liveness ping interval advertised to clients (0 = 5s default, negative disables)")
		drainT    = flag.Duration("drain-timeout", 5*time.Second, "on SIGTERM/SIGINT: how long to let in-flight requests finish")

		shardID  = flag.String("shard-id", "", "cluster mode: this node's shard id (must appear in -shard-map)")
		shardMap = flag.String("shard-map", "",
			"cluster mode: JSON topology file mapping shard ids to addresses; this node serves only the blocks the consistent-hash ring assigns to -shard-id and answers the rest with redirects")

		debugAddr = flag.String("debug-addr", "",
			"optional HTTP debug listen address (JSON metrics at /debug/metrics, pprof at /debug/pprof/)")

		failRate    = flag.Float64("fail-rate", 0, "injected transient read-failure probability")
		permFrac    = flag.Float64("perm-frac", 0, "fraction of injected failures that are permanent")
		corruptRate = flag.Float64("corrupt-rate", 0, "injected payload bit-flip probability")
		ioLatency   = flag.Duration("io-latency", 0, "injected latency per block read")
		faultSeed   = flag.Uint64("fault-seed", 1, "fault injector seed")
	)
	flag.Parse()

	ds := volume.ByName(*dataset)
	if ds == nil {
		fmt.Fprintf(os.Stderr, "vizserver: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	ds = ds.Scale(*scale)
	if *dataset == "climate" {
		ds = ds.WithVariables(*vars)
	}
	g, err := ds.GridWithBlockCount(*blocks)
	if err != nil {
		fatal(err)
	}

	dir, err := os.MkdirTemp("", "vizserver")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, ds.Name+".bvol")
	start := time.Now()
	if err := store.Write(path, ds, g, 0); err != nil {
		fatal(err)
	}
	bf, err := store.Open(path)
	if err != nil {
		fatal(err)
	}
	defer bf.Close()
	fmt.Printf("materialized       %s (v%d, %d blocks) in %v\n",
		path, bf.Header().Version, g.NumBlocks(), time.Since(start).Round(time.Millisecond))

	inj := faultio.NewInjector(bf, faultio.InjectorConfig{
		Seed:          *faultSeed,
		FailRate:      *failRate,
		PermanentFrac: *permFrac,
		CorruptRate:   *corruptRate,
		Latency:       *ioLatency,
	})
	capacity := int64(float64(ds.TotalBytes()) * *cacheFrc)
	if capacity <= 0 {
		capacity = 1
	}
	mc, err := store.NewMemCache(inj, capacity, cache.NewLRU())
	if err != nil {
		fatal(err)
	}
	reg := obs.NewRegistry()
	mc.Instrument(reg)

	cfg := blocksvc.Config{
		Cache:              mc,
		Grid:               g,
		Header:             bf.Header(),
		MaxInflightBytes:   *maxMB << 20,
		MaxSessionRequests: *maxReqs,
		MaxQueueWait:       *maxWait,
		HeartbeatInterval:  *heartbeat,
		Metrics:            reg,
	}
	mode, err := blocksvc.ParseCompressionMode(*wireComp)
	if err != nil {
		fatal(err)
	}
	cfg.Compression = mode
	if (*shardID == "") != (*shardMap == "") {
		fatal(fmt.Errorf("cluster mode needs both -shard-id and -shard-map"))
	}
	if *shardMap != "" {
		m, err := shard.Load(*shardMap)
		if err != nil {
			fatal(err)
		}
		cfg.ShardMap = m
		cfg.ShardID = *shardID
	}
	if !*noPre || mode == blocksvc.CompressLowEntropy {
		// The importance table drives both prefetch prediction and the
		// low-entropy compression policy; build it if either needs it.
		cfg.Imp = entropy.Build(ds, g, entropy.Options{})
	}
	if !*noPre {
		imp := cfg.Imp
		nAz, nEl, nDist := visibility.LatticeForTotal(25920, 10)
		vis, err := visibility.NewTable(g, visibility.Options{
			NAzimuth: nAz, NElevation: nEl, NDistance: nDist,
			RMin: 2.5, RMax: 3.5,
			ViewAngle: vec.Radians(*angle),
			Radius:    radius.Dynamic{Ratio: 0.25, Min: 0.15},
			Lazy:      true,
		})
		if err != nil {
			fatal(err)
		}
		cfg.Vis = vis
		cfg.Sigma = imp.ThresholdForQuantile(*quantile)
	}
	srv, err := blocksvc.NewServer(cfg)
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving            %s on %s (cache %d MiB, prefetch %v)\n",
		ds.Name, l.Addr(), capacity>>20, !*noPre)
	if cfg.ShardMap != nil {
		fmt.Printf("cluster            shard %q of %d (topology epoch %d)\n",
			cfg.ShardID, len(cfg.ShardMap.Shards), cfg.ShardMap.Epoch)
	}

	if *debugAddr != "" {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		defer dl.Close()
		go http.Serve(dl, debugMux(reg))
		fmt.Printf("debug endpoint     http://%s/debug/metrics (pprof under /debug/pprof/)\n", dl.Addr())
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("\ndraining           (%v, in-flight work gets up to %v)\n", s, *drainT)
		ctx, cancel := context.WithTimeout(context.Background(), *drainT)
		if err := srv.Drain(ctx); err != nil {
			fmt.Printf("drain              cut short: %v\n", err)
		}
		cancel()
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
	l.Close()
	srv.Close()

	st := srv.Snapshot()
	fmt.Printf("sessions           %d served (%d still connected at shutdown)\n",
		st.Sessions, st.ActiveSessions)
	fmt.Printf("requests           %d served, %d shed by admission control\n",
		st.Requests, st.ShedRequests)
	fmt.Printf("blocks             %d answered (%d with data, %d faulted), %d MiB sent\n",
		st.Blocks, st.BlocksOK, st.BlocksFailed, st.BytesSent>>20)
	if st.CompressedBlocks+st.CompressSkipped > 0 {
		fmt.Printf("compression        %d blocks compressed (%d KiB -> %d KiB), %d not smaller\n",
			st.CompressedBlocks, st.CompressBytesIn>>10, st.CompressBytesOut>>10, st.CompressSkipped)
	}
	fmt.Printf("view updates       %d received\n", st.ViewUpdates)
	fmt.Printf("liveness           %d heartbeats sent, %d dead peers dropped, %d goaways announced\n",
		st.HeartbeatsSent, st.DeadPeers, st.GoawaysSent)
	if st.Redirects > 0 || st.TopologyPushes > 0 {
		fmt.Printf("cluster            %d redirects answered, %d topology pushes sent\n",
			st.Redirects, st.TopologyPushes)
	}
	fmt.Printf("prefetch           %d issued, %d executed, %d failed, %d dropped\n",
		st.PrefetchIssued, st.PrefetchExecuted, st.PrefetchFailed, st.PrefetchDropped)
	cc := mc.Counters()
	fmt.Printf("shared cache       %d hits / %d misses, %d coalesced across sessions\n",
		cc.Hits, cc.Misses, cc.Coalesced)
	ios := bf.IOStats()
	fmt.Printf("block file         %d blocks served, %d batches in %d merged runs\n",
		ios.Reads, ios.Batches, ios.MergedRuns)
	is := inj.Stats()
	if is.Transient+is.Permanent+is.Corrupted > 0 {
		fmt.Printf("injected faults    %d transient, %d permanent, %d corrupted over %d reads\n",
			is.Transient, is.Permanent, is.Corrupted, is.Reads)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vizserver:", err)
	os.Exit(1)
}
