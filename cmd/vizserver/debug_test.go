package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/blocksvc"
	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/ooc"
	"repro/internal/radius"
	"repro/internal/store"
	"repro/internal/testutil"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

// fetchSnapshot GETs the debug endpoint and decodes the JSON body.
func fetchSnapshot(t *testing.T, url string) (obs.Snapshot, error) {
	t.Helper()
	resp, err := http.Get(url + "/debug/metrics")
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	var s obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return obs.Snapshot{}, err
	}
	return s, nil
}

// TestDebugEndpointLiveMetrics is the observability acceptance test: the
// vizserver stack (shared instrumented cache, block service with a metrics
// registry, debug mux) serving two concurrent remote ooc.Runtime sessions,
// with the debug endpoint polled while frames run. The served JSON must
// carry the cache hit/miss/coalesced counters, the service and client
// counters including shed counts, and the frame-phase histograms with sane
// p50/p95/p99 — and per-session gauges must disappear once sessions end.
func TestDebugEndpointLiveMetrics(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	reg := obs.NewRegistry()

	// Server side: ball dataset on disk, instrumented shared cache, block
	// service with prefetch enabled, all reporting into reg.
	ds := volume.Ball().Scale(1.0 / 32) // 32³
	g, err := ds.Grid(grid.Dims{X: 8, Y: 8, Z: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ball.bvol")
	if err := store.Write(path, ds, g, 0); err != nil {
		t.Fatal(err)
	}
	bf, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bf.Close() })
	mc, err := store.NewMemCache(bf, int64(g.NumBlocks())*bf.BlockBytes(0), cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	mc.Instrument(reg)
	imp := entropy.Build(ds, g, entropy.Options{})
	vis, err := visibility.NewTable(g, visibility.Options{
		NAzimuth: 16, NElevation: 8, NDistance: 2,
		RMin: 2.5, RMax: 3.5,
		ViewAngle: vec.Radians(20),
		Radius:    radius.Fixed(0.3),
		Lazy:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := blocksvc.NewServer(blocksvc.Config{
		Cache: mc, Grid: g, Header: bf.Header(),
		Vis: vis, Imp: imp, Sigma: 0,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis := blocksvc.NewPipeListener()
	go srv.Serve(lis)
	t.Cleanup(func() {
		lis.Close()
		srv.Close()
	})

	// The exact mux vizserver mounts on -debug-addr.
	web := httptest.NewServer(debugMux(reg))
	t.Cleanup(web.Close)

	// Two remote sessions, each a RemoteReader-backed ooc.Runtime sharing
	// the one registry; caller-side visibility and render phases are timed
	// through each runtime's phase timer, as vizsim does.
	const sessions = 2
	readers := make([]*blocksvc.RemoteReader, sessions)
	runtimes := make([]*ooc.Runtime, sessions)
	for s := 0; s < sessions; s++ {
		readers[s], err = blocksvc.Dial(blocksvc.ClientConfig{
			Dial: lis.Dial, Conns: 2, Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		cmc, err := store.NewMemCache(readers[s],
			int64(g.NumBlocks())*bf.BlockBytes(0), cache.NewLRU())
		if err != nil {
			t.Fatal(err)
		}
		runtimes[s], err = ooc.New(cmc, vis, imp, ooc.Options{Sigma: 0, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
	}

	theta := vec.Radians(20)
	orbit := camera.Orbit(3, 6)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ctx := context.Background()
			rt := runtimes[s]
			for i, pos := range orbit.Steps {
				readers[s].SendView(ctx, pos)
				visSpan := rt.Phases().Begin(obs.PhaseVisibility)
				visible := visibility.VisibleSet(g, camera.Camera{Pos: pos, ViewAngle: theta})
				visSpan.End()
				data, rep, err := rt.Frame(ctx, pos, visible)
				if err != nil {
					t.Errorf("session %d frame %d: %v", s, i, err)
					return
				}
				if rep.Degraded {
					t.Errorf("session %d frame %d degraded without faults", s, i)
					return
				}
				renderSpan := rt.Phases().Begin(obs.PhaseRender)
				var sum float64
				for j := range data {
					for _, v := range data[j] {
						sum += float64(v)
					}
				}
				renderSpan.End()
				_ = sum
			}
		}(s)
	}

	// Poll the endpoint while the sessions run: every response must be a
	// decodable snapshot, and at least one must land mid-run.
	done := make(chan struct{})
	polls := make(chan int, 1)
	go func() {
		defer close(polls)
		n := 0
		for {
			select {
			case <-done:
				polls <- n
				return
			default:
			}
			if _, err := fetchSnapshot(t, web.URL); err != nil {
				t.Errorf("live poll: %v", err)
				polls <- n
				return
			}
			n++
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(done)
	if n := <-polls; n == 0 {
		t.Error("debug endpoint never polled while sessions ran")
	}

	// Sessions are still connected: the full metric surface must be there.
	snap, err := fetchSnapshot(t, web.URL)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"cache.hits", "cache.misses", "cache.coalesced",
		"svc.requests", "svc.shed_requests", "svc.blocks_ok",
		"client.requests", "client.blocks_served",
		"ooc.frames", "ooc.demand_reads", "ooc.prefetch_issued",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("snapshot is missing counter %q", name)
		}
	}
	wantFrames := int64(sessions * len(orbit.Steps))
	if got := snap.Counters["ooc.frames"]; got != wantFrames {
		t.Errorf("ooc.frames = %d, want %d", got, wantFrames)
	}
	if snap.Counters["svc.requests"] == 0 || snap.Counters["client.requests"] == 0 {
		t.Errorf("no traffic recorded: svc.requests=%d client.requests=%d",
			snap.Counters["svc.requests"], snap.Counters["client.requests"])
	}
	for _, name := range []string{
		"ooc.phase.visibility_ns", "ooc.phase.demand_wait_ns",
		"ooc.phase.render_ns", "ooc.phase.prefetch_issue_ns",
		"ooc.frame_ns", "svc.queue_wait_ns", "client.request_ns",
	} {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Errorf("snapshot is missing histogram %q", name)
			continue
		}
		if h.Count == 0 {
			t.Errorf("histogram %q recorded nothing", name)
		}
		if h.P50 > h.P95 || h.P95 > h.P99 {
			t.Errorf("histogram %q quantiles out of order: p50=%d p95=%d p99=%d",
				name, h.P50, h.P95, h.P99)
		}
	}
	if snap.Gauges["svc.active_sessions"] == 0 {
		t.Error("svc.active_sessions = 0 with sessions connected")
	}
	liveSessionGauges := 0
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "svc.session.") {
			liveSessionGauges++
		}
	}
	if liveSessionGauges == 0 {
		t.Error("no per-session inflight gauges while sessions are connected")
	}

	// Orderly shutdown unregisters the dynamic per-session gauges.
	for s := 0; s < sessions; s++ {
		runtimes[s].Close()
		readers[s].Close()
	}
	lis.Close()
	srv.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap, err = fetchSnapshot(t, web.URL)
		if err != nil {
			t.Fatal(err)
		}
		stale := 0
		for name := range snap.Gauges {
			if strings.HasPrefix(name, "svc.session.") {
				stale++
			}
		}
		if stale == 0 && snap.Gauges["svc.active_sessions"] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session metrics survived shutdown: %d gauges, active=%d",
				stale, snap.Gauges["svc.active_sessions"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
