// Command repro regenerates every table and figure of the paper's
// evaluation plus the ablation studies (see DESIGN.md §4 for the index).
//
// Usage:
//
//	repro [-exp all|table1|fig7|fig9|fig11|fig12|fig13|ablation]
//	      [-scale 0.25] [-steps 400] [-ratio 0.5] [-csv dir]
//
// Text tables go to stdout; -csv additionally writes one CSV per experiment
// into the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment to run: all, table1, fig7, fig9, fig11, fig12, fig13, ablation")
		scale  = flag.Float64("scale", 0.25, "dataset scale factor (1 = paper-size resolutions)")
		steps  = flag.Int("steps", 400, "camera-path length (paper: 400)")
		ratio  = flag.Float64("ratio", 0.5, "cache-size ratio between successive memory levels")
		vars   = flag.Int("climate-vars", 8, "climate dataset variable count (paper: 244)")
		seed   = flag.Uint64("seed", 0x5eed, "random-path seed")
		csvDir = flag.String("csv", "", "directory to write per-experiment CSV files into")
	)
	flag.Parse()

	opts := experiments.Options{
		Scale:       *scale,
		Steps:       *steps,
		CacheRatio:  *ratio,
		ClimateVars: *vars,
		Seed:        *seed,
	}

	type runner struct {
		name string
		fn   func(experiments.Options) (*experiments.Result, error)
	}
	all := []runner{
		{"table1", experiments.Table1},
		{"fig7", experiments.Fig7},
		{"fig9", experiments.Fig9},
		{"fig11", experiments.Fig11},
		{"fig12", experiments.Fig12},
		{"fig13", experiments.Fig13},
		{"ablation-components", experiments.AblationComponents},
		{"ablation-sigma", experiments.AblationSigma},
		{"ablation-policies", experiments.AblationPolicies},
		{"ablation-overlap", experiments.AblationOverlap},
		{"ablation-prefetch-window", experiments.AblationPrefetchWindow},
		{"ext-lod", experiments.ExtLOD},
		{"ext-time", experiments.ExtTime},
		{"ext-vr", experiments.ExtVR},
		{"ext-query", experiments.ExtQuery},
	}

	selected := make([]runner, 0, len(all))
	for _, r := range all {
		switch *exp {
		case "all":
			selected = append(selected, r)
		case "ablation":
			if len(r.name) >= 8 && r.name[:8] == "ablation" {
				selected = append(selected, r)
			}
		default:
			if r.name == *exp {
				selected = append(selected, r)
			}
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "repro: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	for _, r := range selected {
		start := time.Now()
		res, err := r.fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		if err := res.Table.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "repro: write: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [%s completed in %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "repro: csv: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, res.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return res.Table.WriteCSV(f)
}
