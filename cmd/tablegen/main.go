// Command tablegen performs the paper's one-time pre-processing (Steps 1–2
// of Fig. 5): it builds the T_visible camera-sampling table and the
// T_important entropy ranking for a dataset/partition and saves both to
// disk, so interactive sessions skip the pre-processing cost.
//
// Usage:
//
//	tablegen -dataset lifted_rr -scale 0.125 -blocks 1024 -out tables/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/entropy"
	"repro/internal/radius"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

func main() {
	var (
		dataset  = flag.String("dataset", "3d_ball", "dataset name")
		scale    = flag.Float64("scale", 0.125, "dataset scale factor")
		blocks   = flag.Int("blocks", 1024, "approximate block count")
		out      = flag.String("out", "tables", "output directory")
		sampling = flag.Int("sampling", 25920, "T_visible sampling-position count")
		angleDeg = flag.Float64("view-angle", 10, "full view angle, degrees")
		rMin     = flag.Float64("rmin", 2.5, "Ω inner camera distance")
		rMax     = flag.Float64("rmax", 3.5, "Ω outer camera distance")
		ratio    = flag.Float64("ratio", 0.5, "cache ratio (sets the Eq. 6 radius)")
		vars     = flag.Int("climate-vars", 8, "climate variable count")
	)
	flag.Parse()

	ds := volume.ByName(*dataset)
	if ds == nil {
		fmt.Fprintf(os.Stderr, "tablegen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	ds = ds.Scale(*scale)
	if ds.Name == "climate" {
		ds = ds.WithVariables(*vars)
	}
	g, err := ds.GridWithBlockCount(*blocks)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	start := time.Now()
	imp := entropy.Build(ds, g, entropy.Options{})
	impPath := filepath.Join(*out, ds.Name+".timp")
	if err := saveTo(impPath, imp.Save); err != nil {
		fatal(err)
	}
	fmt.Printf("T_important: %d blocks scored in %v -> %s\n",
		imp.Len(), time.Since(start).Round(time.Millisecond), impPath)

	start = time.Now()
	nAz, nEl, nDist := visibility.LatticeForTotal(*sampling, 10)
	vis, err := visibility.NewTable(g, visibility.Options{
		NAzimuth: nAz, NElevation: nEl, NDistance: nDist,
		RMin: *rMin, RMax: *rMax,
		ViewAngle: vec.Radians(*angleDeg),
		Radius:    radius.Dynamic{Ratio: *ratio * *ratio, Min: 0.02},
		Lazy:      true, // Save materializes everything in parallel
	})
	if err != nil {
		fatal(err)
	}
	visPath := filepath.Join(*out, ds.Name+".tvis")
	if err := saveTo(visPath, vis.Save); err != nil {
		fatal(err)
	}
	fmt.Printf("T_visible:   %d sampling positions built in %v -> %s\n",
		vis.NumKeys(), time.Since(start).Round(time.Millisecond), visPath)
}

func saveTo(path string, save func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tablegen:", err)
	os.Exit(1)
}
