// Command datagen materializes a synthetic Table I dataset to a raw
// little-endian float32 brick file (x-fastest layout), the interchange
// format of classic out-of-core visualization tools.
//
// Usage:
//
//	datagen -dataset lifted_rr -scale 0.125 -out lifted_rr.raw [-variable 0]
//
// The file holds Res.X×Res.Y×Res.Z float32 values of one variable. Writing
// streams slice by slice, so paper-size volumes (4 GB+) need only a few MB
// of memory.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/volume"
)

func main() {
	var (
		dataset  = flag.String("dataset", "3d_ball", "dataset name")
		scale    = flag.Float64("scale", 0.125, "dataset scale factor")
		variable = flag.Int("variable", 0, "variable index to materialize")
		out      = flag.String("out", "", "output .raw path (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}
	ds := volume.ByName(*dataset)
	if ds == nil {
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	ds = ds.Scale(*scale)
	if *variable < 0 || *variable >= ds.Variables {
		fmt.Fprintf(os.Stderr, "datagen: variable %d out of [0,%d)\n", *variable, ds.Variables)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	res := ds.Res
	buf := make([]byte, 4)
	for z := 0; z < res.Z; z++ {
		zc := (float64(z) + 0.5) / float64(res.Z)
		for y := 0; y < res.Y; y++ {
			yc := (float64(y) + 0.5) / float64(res.Y)
			for x := 0; x < res.X; x++ {
				xc := (float64(x) + 0.5) / float64(res.X)
				v := float32(ds.Field.Sample(*variable, xc, yc, zc))
				binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
				if _, err := w.Write(buf); err != nil {
					fatal(err)
				}
			}
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("datagen: wrote %s (%v, variable %d, %d bytes)\n",
		*out, res, *variable, res.Count()*4)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
