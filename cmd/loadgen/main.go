// Command loadgen replays fleets of concurrent synthetic navigation
// sessions — orbit, fly-through, dwell-and-zoom, random saccade — as real
// protocol clients, and writes the capacity curve: p50/p95/p99 frame
// latency, shed rate, and prefetch-hit ratio versus session count.
//
// By default it self-hosts an in-process block service over the analytic
// ball dataset, so one command measures the whole service path with no
// setup. Point it at a live vizserver with -addr (and -metrics-url for its
// /debug/metrics endpoint, so server-side prefetch counters still reach the
// report).
//
// Usage:
//
//	go run ./cmd/loadgen -seed 1 -sessions 4,16,64 -frames 48 -out results/LOADGEN.json
//	go run ./cmd/loadgen -sessions 4 -frames 8 -smoke            # CI gate
//	go run ./cmd/loadgen -addr :9000 -metrics-url http://localhost:9100/debug/metrics
//
// The workload is deterministic in (seed, flags): the same inputs replay the
// identical per-session request sequence, so two runs differ only in timing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
	"repro/internal/vec"
)

func main() {
	seed := flag.Uint64("seed", 1, "workload seed (paths, phases, retry jitter)")
	sessionsFlag := flag.String("sessions", "4,16", "comma-separated session counts of the capacity curve")
	frames := flag.Int("frames", 32, "view steps each session replays")
	radius := flag.Float64("radius", 3, "nominal view distance of generated paths")
	theta := flag.Float64("theta", 20, "view frustum cone angle, degrees")
	conns := flag.Int("conns", 1, "connection-pool size per session client")
	think := flag.Duration("think", 0, "pause between frames (0 probes capacity)")
	mix := flag.String("patterns", "", "comma-separated pattern mix (default all: "+strings.Join(loadgen.Patterns, ",")+")")
	addr := flag.String("addr", "", "vizserver address (default: self-hosted in-process server)")
	metricsURL := flag.String("metrics-url", "", "with -addr: its /debug/metrics endpoint")
	out := flag.String("out", "", "write the report as JSON here ('' = stdout summary only)")
	smoke := flag.Bool("smoke", false, "CI mode: exit nonzero on frame errors or a malformed report")

	scale := flag.Float64("scale", 1.0/32, "in-process dataset downscale of the 1024³ ball")
	cacheFrac := flag.Float64("cache-frac", 1, "in-process cache size as a fraction of the dataset")
	predictOff := flag.Bool("predict-off", false, "in-process: nearest-sample prefetch baseline")
	sigma := flag.Float64("sigma", 0, "in-process entropy prefetch threshold")
	maxInflight := flag.Int64("max-inflight-bytes", 0, "in-process admission cap (small values force shedding)")
	flag.Parse()

	counts, err := parseCounts(*sessionsFlag)
	if err != nil {
		fatal(err)
	}
	cfg := loadgen.Config{
		Seed:       *seed,
		Sessions:   counts,
		Frames:     *frames,
		Radius:     *radius,
		ViewAngle:  vec.Radians(*theta),
		Conns:      *conns,
		Think:      *think,
		Addr:       *addr,
		MetricsURL: *metricsURL,
		Inproc: &loadgen.InprocOptions{
			Scale:            *scale,
			CacheFrac:        *cacheFrac,
			PredictOff:       *predictOff,
			Sigma:            *sigma,
			MaxInflightBytes: *maxInflight,
		},
	}
	if *mix != "" {
		cfg.PatternMix = strings.Split(*mix, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	t0 := time.Now()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	printSummary(rep, time.Since(t0))

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *smoke {
		// Shed reads make sessions fall short of their frame quota only on
		// hard errors, never on sheds — so the full-quota check holds even
		// in constrained smoke runs.
		if err := rep.Validate(true); err != nil {
			fatal(err)
		}
		fmt.Println("load smoke OK")
	}
}

func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("loadgen: bad session count %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func printSummary(rep *loadgen.Report, elapsed time.Duration) {
	fmt.Printf("loadgen: seed=%d frames=%d target=%s elapsed=%s\n",
		rep.Seed, rep.Frames, rep.Target, elapsed.Round(time.Millisecond))
	fmt.Printf("%9s %9s %9s %9s %9s %9s %11s\n",
		"sessions", "p50ms", "p95ms", "p99ms", "maxms", "shed", "prefetch")
	for _, p := range rep.Points {
		hit := "n/a"
		if p.PrefetchHitRatio >= 0 {
			hit = fmt.Sprintf("%.1f%%", 100*p.PrefetchHitRatio)
		}
		fmt.Printf("%9d %9.2f %9.2f %9.2f %9.2f %8.1f%% %11s\n",
			p.Sessions, p.P50Ms, p.P95Ms, p.P99Ms, p.MaxMs, 100*p.ShedRate, hit)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
