// Command vizsim runs one interactive-visualization simulation: a dataset,
// a camera path, and a replacement policy, reporting miss rate and timing.
//
// Usage:
//
//	vizsim -dataset 3d_ball -policy opt -path random -deg-lo 10 -deg-hi 15
//	       [-blocks 2048] [-steps 400] [-scale 0.25] [-ratio 0.5]
//
// Policies: fifo, lru, clock, lfu, arc, opt (the paper's app-aware policy).
// Paths: spherical (uses -deg-lo as the per-step interval), random, orbit.
//
// With -realio the run moves actual bytes instead of simulating the
// hierarchy: the dataset is materialized as a checksummed block file and
// the concurrent out-of-core runtime drives it, optionally through a
// deterministic fault injector (-fail-rate, -corrupt-rate, -io-latency,
// -fault-seed), reporting retry/degradation counters alongside cache and
// prefetch stats. With -remote addr the blocks come from a running vizserver
// instead of local disk: the runtime reads through a pooled blocksvc client,
// sends its camera positions so the server prefetches ahead of the session,
// and reports wire-level fault/shed counters. A comma-separated -remote list
// is replicas of ONE shard (each address serves the whole dataset; the
// client fails over between them); -shard-map cluster.json instead routes
// reads across a sharded cluster where each node owns a consistent-hash
// slice of the blocks and the client re-routes live on topology changes. -cache-dir adds a persistent
// SSD spill tier under the in-memory cache (sized by -cache-size): DRAM
// evictions are written behind to checksummed spill files that survive
// restarts, so a reconnecting session re-serves warm blocks from local
// flash instead of the wire. -metrics 2s prints live registry snapshots
// while frames run and ends with the frame-phase
// (visibility/demand-wait/render/prefetch-issue) latency breakdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/blocksvc"
	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/ooc"
	"repro/internal/policy"
	"repro/internal/radius"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/tier"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

func main() {
	var (
		dataset  = flag.String("dataset", "3d_ball", "dataset name (3d_ball, lifted_mix_frac, lifted_rr, climate)")
		policy   = flag.String("policy", "opt", "replacement policy: fifo, lru, clock, lfu, arc, opt")
		path     = flag.String("path", "random", "camera path: spherical, random, orbit")
		degLo    = flag.Float64("deg-lo", 10, "per-step direction change lower bound (or spherical interval)")
		degHi    = flag.Float64("deg-hi", 15, "per-step direction change upper bound (random path)")
		blocks   = flag.Int("blocks", 2048, "approximate block count")
		steps    = flag.Int("steps", 400, "path length")
		scale    = flag.Float64("scale", 0.25, "dataset scale factor")
		ratio    = flag.Float64("ratio", 0.5, "cache ratio between successive levels")
		angle    = flag.Float64("view-angle", 10, "full view angle, degrees")
		dist     = flag.Float64("distance", 3, "nominal camera distance")
		vars     = flag.Int("climate-vars", 8, "climate variable count")
		seed     = flag.Uint64("seed", 1, "random-path seed")
		pathFile = flag.String("path-file", "", "replay a recorded camera path instead of generating one")
		savePath = flag.String("save-path", "", "write the camera path used to this file")

		realio      = flag.Bool("realio", false, "move actual bytes through the out-of-core runtime instead of simulating")
		remote      = flag.String("remote", "", "realio: read blocks from vizservers at these comma-separated addresses instead of local disk; the flat list is REPLICAS of one shard (every address serves the whole dataset and the client fails over between them) — for a sharded cluster use -shard-map instead")
		shardMapF   = flag.String("shard-map", "", "realio: route reads across a sharded vizserver cluster described by this JSON topology file (each address owns a consistent-hash slice of the blocks); mutually exclusive with -remote")
		cacheDir    = flag.String("cache-dir", "", "realio: persistent spill-tier directory under the in-memory cache (survives restarts; empty = no spill tier)")
		cacheSize   = flag.Int64("cache-size", 256<<20, "realio: spill-tier capacity in bytes")
		metrics     = flag.Duration("metrics", 0, "realio: print a live metrics snapshot at this interval, plus a final frame-phase breakdown (0 = off)")
		cacheFrac   = flag.Float64("cache-frac", 0.25, "realio: in-memory cache size as a fraction of the dataset")
		failRate    = flag.Float64("fail-rate", 0, "realio: injected transient read-failure probability")
		permFrac    = flag.Float64("perm-frac", 0, "realio: fraction of injected failures that are permanent")
		corruptRate = flag.Float64("corrupt-rate", 0, "realio: injected payload bit-flip probability")
		ioLatency   = flag.Duration("io-latency", 0, "realio: injected latency per block read")
		faultSeed   = flag.Uint64("fault-seed", 1, "realio: fault injector seed")
		readTimeout = flag.Duration("read-deadline", 0, "realio: per-read-attempt deadline (0 = none)")
	)
	flag.Parse()

	ds := volume.ByName(*dataset)
	if ds == nil {
		fmt.Fprintf(os.Stderr, "vizsim: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	ds = ds.Scale(*scale)
	if *dataset == "climate" {
		ds = ds.WithVariables(*vars)
	}
	g, err := ds.GridWithBlockCount(*blocks)
	if err != nil {
		fatal(err)
	}

	var p camera.Path
	if *pathFile != "" {
		f, err := os.Open(*pathFile)
		if err != nil {
			fatal(err)
		}
		p, err = camera.LoadPath(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		switch *path {
		case "spherical":
			p = camera.Spherical(*dist, *degLo, *steps)
		case "random":
			p = camera.Random(*dist*0.93, *dist*1.07, *degLo, *degHi, *steps, *seed)
		case "orbit":
			p = camera.Orbit(*dist, *steps)
		case "head":
			p = camera.HeadMotion(*dist, *steps, *seed)
		default:
			fmt.Fprintf(os.Stderr, "vizsim: unknown path %q\n", *path)
			os.Exit(2)
		}
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := p.Save(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if (*remote != "" || *shardMapF != "") && !*realio {
		fmt.Fprintln(os.Stderr, "vizsim: -remote and -shard-map require -realio")
		os.Exit(2)
	}
	if *remote != "" && *shardMapF != "" {
		fmt.Fprintln(os.Stderr, "vizsim: -remote (replicas of one shard) and -shard-map (sharded cluster) are mutually exclusive")
		os.Exit(2)
	}
	if *realio {
		err := runRealIO(ds, g, p, vec.Radians(*angle), *remote, *shardMapF, *cacheDir, *cacheSize, *cacheFrac, faultio.InjectorConfig{
			Seed:          *faultSeed,
			FailRate:      *failRate,
			PermanentFrac: *permFrac,
			CorruptRate:   *corruptRate,
			Latency:       *ioLatency,
		}, *readTimeout, *metrics)
		if err != nil {
			fatal(err)
		}
		return
	}

	cfg := sim.Config{
		Dataset:    ds,
		Grid:       g,
		Path:       p,
		ViewAngle:  vec.Radians(*angle),
		CacheRatio: *ratio,
	}

	var m sim.Metrics
	switch *policy {
	case "opt":
		m, err = sim.RunAppAware(cfg, sim.AppAwareConfig{})
	case "fifo":
		m, err = sim.RunBaseline(cfg, func() cache.Policy { return cache.NewFIFO() }, "FIFO")
	case "lru":
		m, err = sim.RunBaseline(cfg, func() cache.Policy { return cache.NewLRU() }, "LRU")
	case "clock":
		m, err = sim.RunBaseline(cfg, func() cache.Policy { return cache.NewClock() }, "CLOCK")
	case "lfu":
		m, err = sim.RunBaseline(cfg, func() cache.Policy { return cache.NewLFU() }, "LFU")
	case "arc":
		m, err = sim.RunBaseline(cfg, func() cache.Policy { return cache.NewARC(*blocks / 4) }, "ARC")
	default:
		fmt.Fprintf(os.Stderr, "vizsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("dataset           %s (scaled to %v, %d variables, %d blocks)\n",
		ds.Name, ds.Res, ds.Variables, g.NumBlocks())
	fmt.Printf("path              %s (%d steps)\n", p.Name, p.Len())
	fmt.Printf("policy            %s\n", m.Policy)
	fmt.Printf("miss rate         %.4f (DRAM level: %.4f)\n", m.MissRate, m.DRAMMissRate)
	fmt.Printf("I/O time          %v (lookup share %v)\n", m.IOTime, m.QueryTime)
	fmt.Printf("prefetch time     %v (%d blocks)\n", m.PrefetchTime, m.Prefetches)
	fmt.Printf("render time       %v\n", m.RenderTime)
	fmt.Printf("total time        %v\n", m.TotalTime)
	fmt.Printf("mean visible set  %.1f blocks\n", m.MeanVisible)
	fmt.Printf("demand fetches    %d\n", m.DemandFetches)
}

// runRealIO plays the camera path through the fault-tolerant out-of-core
// runtime against real storage, printing retry/degradation counters
// alongside cache and prefetch stats. The backing store is either a locally
// materialized checksummed block file or, with remote set, a vizserver
// reached over the blocksvc protocol (the injector then models client-side
// faults on top of whatever the server injects). With metricsEvery > 0 a
// reporter prints live registry snapshots while frames run, and the run ends
// with the frame-phase latency breakdown.
func runRealIO(ds *volume.Dataset, g *grid.Grid, p camera.Path, theta float64,
	remote, shardMapPath, cacheDir string, cacheSize int64, cacheFrac float64,
	inject faultio.InjectorConfig, readDeadline, metricsEvery time.Duration) error {
	reg := obs.NewRegistry()
	var (
		reader store.BlockReader
		bf     *store.BlockFile
		rr     *blocksvc.RemoteReader
		err    error
	)
	if remote != "" || shardMapPath != "" {
		ccfg := blocksvc.ClientConfig{Conns: 4, Metrics: reg}
		if shardMapPath != "" {
			// Sharded cluster: the topology file drives consistent-hash
			// routing; each shard owns a slice of the blocks.
			ccfg.ShardMap, err = shard.Load(shardMapPath)
			if err != nil {
				return err
			}
		} else {
			// Flat list: replicas of ONE shard; every address serves the
			// whole dataset and the client fails over between them.
			for _, addr := range strings.Split(remote, ",") {
				if addr = strings.TrimSpace(addr); addr != "" {
					ccfg.Endpoints = append(ccfg.Endpoints, blocksvc.Endpoint{Addr: addr})
				}
			}
		}
		rr, err = blocksvc.Dial(ccfg)
		if err != nil {
			return err
		}
		defer rr.Close()
		hdr := rr.Header()
		if hdr.Res != g.Res() || hdr.Block != g.BlockSize() {
			return fmt.Errorf("remote serves %v in %v blocks; local flags give %v in %v — "+
				"start vizsim with the server's -dataset/-scale/-blocks",
				hdr.Res, hdr.Block, g.Res(), g.BlockSize())
		}
		if m := rr.Topology(); m != nil {
			fmt.Printf("remote cluster     %d shards (topology epoch %d, seed %d), %d blocks, 4 pooled conns per shard\n",
				len(m.Shards), m.Epoch, m.Seed, g.NumBlocks())
		} else {
			fmt.Printf("remote store       %s (v%d, %d blocks, %d replicas, 4 pooled conns)\n",
				remote, hdr.Version, g.NumBlocks(), len(ccfg.Endpoints))
		}
		reader = rr
	} else {
		dir, err := os.MkdirTemp("", "vizsim-realio")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, ds.Name+".bvol")
		start := time.Now()
		if err := store.Write(path, ds, g, 0); err != nil {
			return err
		}
		bf, err = store.Open(path)
		if err != nil {
			return err
		}
		defer bf.Close()
		fmt.Printf("materialized       %s (v%d, %d blocks) in %v\n",
			path, bf.Header().Version, g.NumBlocks(), time.Since(start).Round(time.Millisecond))
		reader = bf
	}

	inj := faultio.NewInjector(reader, inject)
	imp := entropy.Build(ds, g, entropy.Options{})
	sigma := imp.ThresholdForQuantile(0.75)
	// With a cache dir, a persistent spill tier sits between the DRAM cache
	// and the (possibly remote) store: DRAM misses check local flash before
	// paying the fetch, and DRAM evictions are written behind into it. The
	// tier evicts by the paper's importance split — high-entropy blocks
	// outlive low-entropy ones on flash, mirroring the simulator policy.
	var spill *tier.Tier
	missReader := store.BlockReader(inj)
	if cacheDir != "" {
		spill, err = tier.Open(tier.Config{
			Dir:      cacheDir,
			Capacity: cacheSize,
			Policy:   policy.NewImportanceLRU(imp.Score, sigma),
		})
		if err != nil {
			return err
		}
		defer spill.Close()
		spill.Instrument(reg)
		missReader = tier.NewReader(inj, spill)
		c := spill.Counters()
		fmt.Printf("spill tier         %s (%d bytes budget; recovered %d blocks, quarantined %d, reclaimed %d temps)\n",
			cacheDir, cacheSize, c.Blocks, c.Quarantined, c.TmpReclaimed)
	}
	capacity := int64(float64(ds.TotalBytes()) * cacheFrac)
	if capacity <= 0 {
		capacity = 1
	}
	mc, err := store.NewMemCache(missReader, capacity, cache.NewLRU())
	if err != nil {
		return err
	}
	if spill != nil {
		mc.OnEvict(func(id grid.BlockID, vals []float32) { spill.Put(id, vals) })
	}
	// The simulation drops frame data as soon as counters are tallied, so
	// evicted decode buffers can be recycled safely.
	mc.EnableRecycling()
	mc.Instrument(reg)
	nAz, nEl, nDist := visibility.LatticeForTotal(25920, 10)
	vis, err := visibility.NewTable(g, visibility.Options{
		NAzimuth: nAz, NElevation: nEl, NDistance: nDist,
		RMin: 2.5, RMax: 3.5,
		ViewAngle: theta,
		Radius:    radius.Dynamic{Ratio: 0.25, Min: 0.15},
		Lazy:      true,
	})
	if err != nil {
		return err
	}
	rt, err := ooc.New(mc, vis, imp, ooc.Options{
		Sigma:           sigma,
		PrefetchWorkers: 4,
		ReadDeadline:    readDeadline,
		Metrics:         reg,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	var reporter sync.WaitGroup
	if metricsEvery > 0 {
		stop := make(chan struct{})
		defer func() { close(stop); reporter.Wait() }()
		reporter.Add(1)
		go func() {
			defer reporter.Done()
			tick := time.NewTicker(metricsEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					reportMetrics(reg)
				}
			}
		}()
	}

	ctx := context.Background()
	var missing int
	var touched float64
	wall := time.Now()
	for _, pos := range p.Steps {
		if rr != nil {
			// Tell the server where the camera is so its shared-cache
			// prefetch works ahead of this session.
			rr.SendView(ctx, pos)
		}
		visSpan := rt.Phases().Begin(obs.PhaseVisibility)
		visible := visibility.VisibleSet(g, camera.Camera{Pos: pos, ViewAngle: theta})
		visSpan.End()
		data, rep, err := rt.Frame(ctx, pos, visible)
		if err != nil {
			return err
		}
		// The stand-in for rendering: touch every visible block's payload
		// once, then drop it so the cache can recycle the buffers.
		renderSpan := rt.Phases().Begin(obs.PhaseRender)
		for _, vals := range data {
			if len(vals) > 0 {
				touched += float64(vals[0]) + float64(vals[len(vals)-1])
			}
		}
		renderSpan.End()
		missing += len(rep.Missing)
	}
	elapsed := time.Since(wall)
	_ = touched

	st := rt.Snapshot()
	hits, misses := rt.CacheStats()
	fmt.Printf("frames             %d in %v wall clock\n", st.Frames, elapsed.Round(time.Millisecond))
	fmt.Printf("cache              %d hits / %d misses (hit rate %.4f)\n",
		hits, misses, float64(hits)/float64(maxI64(hits+misses, 1)))
	fmt.Printf("demand             %d store reads, %d memory hits, %d miss batches\n",
		st.DemandReads, st.DemandHits, st.DemandBatches)
	cc := mc.Counters()
	fmt.Printf("coalesced          %d duplicate in-flight requests merged, %d buffers recycled\n",
		cc.Coalesced, cc.Recycled)
	if bf != nil {
		ios := bf.IOStats()
		fmt.Printf("block file         %d blocks served, %d batches (%d batched blocks in %d merged runs), %d/%d decode bufs reused\n",
			ios.Reads, ios.Batches, ios.BatchBlocks, ios.MergedRuns, ios.BufReuses, ios.BufGets)
	}
	if rr != nil {
		rs := rr.Snapshot()
		fmt.Printf("remote             %d requests (%d blocks) over %d dials, %d MiB received, %d views sent\n",
			rs.Requests, rs.BlocksRequested, rs.Dials, rs.BytesReceived>>20, rs.ViewUpdates)
		fmt.Printf("remote faults      %d server-side, %d shed, %d wire checksum rejects, %d torn connections\n",
			rs.RemoteFaults, rs.ShedRequests, rs.ChecksumErrors, rs.TransportErrors)
		if rs.DecompressedBlocks > 0 {
			fmt.Printf("remote codec       %d compressed blocks inflated to %d MiB\n",
				rs.DecompressedBlocks, rs.DecompressedBytes>>20)
		}
		fmt.Printf("remote liveness    %d pings sent (%d pongs), %d dead conns dropped, %d goaways seen\n",
			rs.PingsSent, rs.PongsReceived, rs.DeadPeers, rs.GoawaysReceived)
		fmt.Printf("remote failover    %d batches re-routed; breaker %d opens / %d probes / %d closes\n",
			rs.Failovers, rs.BreakerOpens, rs.BreakerProbes, rs.BreakerCloses)
		if rs.TopologyUpdates > 0 || rs.Redirects > 0 || rs.Reroutes > 0 {
			fmt.Printf("remote cluster     %d topology updates adopted, %d redirects seen, %d cross-shard re-routes\n",
				rs.TopologyUpdates, rs.Redirects, rs.Reroutes)
		}
	}
	if spill != nil {
		// Let the write-behind queue land before reporting, so the final
		// counters (and the directory the next session warms from) reflect
		// every spill this run produced.
		spill.Drain()
		tc := spill.Counters()
		fmt.Printf("spill tier         %d writes, %d hits / %d misses, %d evictions, %d blocks (%d MiB) resident\n",
			tc.SpillWrites, tc.SpillHits, tc.SpillMisses, tc.Evictions, tc.Blocks, tc.OccupancyBytes>>20)
		fmt.Printf("spill faults       %d disk faults, %d quarantined, %d dropped; breaker %s (%d opens / %d recoveries, %d reads + %d writes bypassed)\n",
			tc.DiskFaults, tc.Quarantined, tc.Dropped, spill.BreakerState(),
			tc.BreakerOpens, tc.BreakerRecov, tc.ReadBypassed, tc.WriteBypassed)
	}
	fmt.Printf("prefetch           %d issued, %d deduped, %d executed, %d failed, %d dropped\n",
		st.PrefetchIssued, st.PrefetchDeduped, st.PrefetchExecuted, st.PrefetchFailed, st.PrefetchDropped)
	fmt.Printf("retries            %d extra read attempts absorbed\n", st.Retries)
	fmt.Printf("checksum rejects   %d\n", st.ChecksumErrors)
	fmt.Printf("degraded frames    %d of %d (%d blocks lost)\n", st.DegradedFrames, st.Frames, missing)
	is := inj.Stats()
	fmt.Printf("injected faults    %d transient, %d permanent, %d corrupted (%d caught) over %d reads\n",
		is.Transient, is.Permanent, is.Corrupted, is.CorruptCaught, is.Reads)
	if metricsEvery > 0 {
		reportPhases(reg)
	}
	return nil
}

// reportMetrics prints one live line from the registry: frame count, cache
// traffic, and the demand-wait tail so a stalling run is visible as it runs.
func reportMetrics(reg *obs.Registry) {
	s := reg.Snapshot()
	dw := s.Histograms["ooc.phase.demand_wait_ns"]
	fmt.Printf("metrics            frames=%d cache=%d/%d coalesced=%d degraded=%d demand_wait p50=%v p95=%v\n",
		s.Counters["ooc.frames"],
		s.Counters["cache.hits"], s.Counters["cache.misses"],
		s.Counters["cache.coalesced"], s.Counters["ooc.degraded_frames"],
		time.Duration(dw.P50), time.Duration(dw.P95))
	if _, ok := s.Gauges["tier.breaker_state"]; ok {
		fmt.Printf("tier               spills=%d hits=%d faults=%d quarantined=%d occupancy=%dMiB breaker=%s\n",
			s.Counters["tier.spill_writes"], s.Counters["tier.spill_hits"],
			s.Counters["tier.disk_faults"], s.Counters["tier.quarantined"],
			s.Gauges["tier.occupancy_bytes"]>>20,
			breakerState(s.Gauges["tier.breaker_state"]).String())
	}
}

// breakerState mirrors the tier's gauge encoding for display.
type breakerState int64

func (s breakerState) String() string {
	switch s {
	case 0:
		return "closed"
	case 1:
		return "open"
	case 2:
		return "half-open"
	default:
		return "unknown"
	}
}

// reportPhases prints the frame-phase latency breakdown the registry
// accumulated over the whole run: the paper's visibility → demand-wait →
// render → prefetch-issue split, plus the whole-frame distribution.
func reportPhases(reg *obs.Registry) {
	s := reg.Snapshot()
	fmt.Println("frame phases       count        p50        p95        p99")
	for _, name := range []string{
		"ooc.phase.visibility_ns",
		"ooc.phase.demand_wait_ns",
		"ooc.phase.render_ns",
		"ooc.phase.prefetch_issue_ns",
		"ooc.frame_ns",
	} {
		h, ok := s.Histograms[name]
		if !ok || h.Count == 0 {
			continue
		}
		label := strings.TrimSuffix(name, "_ns")
		label = strings.TrimPrefix(label, "ooc.phase.")
		label = strings.TrimPrefix(label, "ooc.")
		fmt.Printf("  %-16s %6d %10v %10v %10v\n", label, h.Count,
			time.Duration(h.P50), time.Duration(h.P95), time.Duration(h.P99))
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vizsim:", err)
	os.Exit(1)
}
