// Command vizsim runs one interactive-visualization simulation: a dataset,
// a camera path, and a replacement policy, reporting miss rate and timing.
//
// Usage:
//
//	vizsim -dataset 3d_ball -policy opt -path random -deg-lo 10 -deg-hi 15
//	       [-blocks 2048] [-steps 400] [-scale 0.25] [-ratio 0.5]
//
// Policies: fifo, lru, clock, lfu, arc, opt (the paper's app-aware policy).
// Paths: spherical (uses -deg-lo as the per-step interval), random, orbit.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/sim"
	"repro/internal/vec"
	"repro/internal/volume"
)

func main() {
	var (
		dataset  = flag.String("dataset", "3d_ball", "dataset name (3d_ball, lifted_mix_frac, lifted_rr, climate)")
		policy   = flag.String("policy", "opt", "replacement policy: fifo, lru, clock, lfu, arc, opt")
		path     = flag.String("path", "random", "camera path: spherical, random, orbit")
		degLo    = flag.Float64("deg-lo", 10, "per-step direction change lower bound (or spherical interval)")
		degHi    = flag.Float64("deg-hi", 15, "per-step direction change upper bound (random path)")
		blocks   = flag.Int("blocks", 2048, "approximate block count")
		steps    = flag.Int("steps", 400, "path length")
		scale    = flag.Float64("scale", 0.25, "dataset scale factor")
		ratio    = flag.Float64("ratio", 0.5, "cache ratio between successive levels")
		angle    = flag.Float64("view-angle", 10, "full view angle, degrees")
		dist     = flag.Float64("distance", 3, "nominal camera distance")
		vars     = flag.Int("climate-vars", 8, "climate variable count")
		seed     = flag.Uint64("seed", 1, "random-path seed")
		pathFile = flag.String("path-file", "", "replay a recorded camera path instead of generating one")
		savePath = flag.String("save-path", "", "write the camera path used to this file")
	)
	flag.Parse()

	ds := volume.ByName(*dataset)
	if ds == nil {
		fmt.Fprintf(os.Stderr, "vizsim: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	ds = ds.Scale(*scale)
	if *dataset == "climate" {
		ds = ds.WithVariables(*vars)
	}
	g, err := ds.GridWithBlockCount(*blocks)
	if err != nil {
		fatal(err)
	}

	var p camera.Path
	if *pathFile != "" {
		f, err := os.Open(*pathFile)
		if err != nil {
			fatal(err)
		}
		p, err = camera.LoadPath(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		switch *path {
		case "spherical":
			p = camera.Spherical(*dist, *degLo, *steps)
		case "random":
			p = camera.Random(*dist*0.93, *dist*1.07, *degLo, *degHi, *steps, *seed)
		case "orbit":
			p = camera.Orbit(*dist, *steps)
		case "head":
			p = camera.HeadMotion(*dist, *steps, *seed)
		default:
			fmt.Fprintf(os.Stderr, "vizsim: unknown path %q\n", *path)
			os.Exit(2)
		}
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := p.Save(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	cfg := sim.Config{
		Dataset:    ds,
		Grid:       g,
		Path:       p,
		ViewAngle:  vec.Radians(*angle),
		CacheRatio: *ratio,
	}

	var m sim.Metrics
	switch *policy {
	case "opt":
		m, err = sim.RunAppAware(cfg, sim.AppAwareConfig{})
	case "fifo":
		m, err = sim.RunBaseline(cfg, func() cache.Policy { return cache.NewFIFO() }, "FIFO")
	case "lru":
		m, err = sim.RunBaseline(cfg, func() cache.Policy { return cache.NewLRU() }, "LRU")
	case "clock":
		m, err = sim.RunBaseline(cfg, func() cache.Policy { return cache.NewClock() }, "CLOCK")
	case "lfu":
		m, err = sim.RunBaseline(cfg, func() cache.Policy { return cache.NewLFU() }, "LFU")
	case "arc":
		m, err = sim.RunBaseline(cfg, func() cache.Policy { return cache.NewARC(*blocks / 4) }, "ARC")
	default:
		fmt.Fprintf(os.Stderr, "vizsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("dataset           %s (scaled to %v, %d variables, %d blocks)\n",
		ds.Name, ds.Res, ds.Variables, g.NumBlocks())
	fmt.Printf("path              %s (%d steps)\n", p.Name, p.Len())
	fmt.Printf("policy            %s\n", m.Policy)
	fmt.Printf("miss rate         %.4f (DRAM level: %.4f)\n", m.MissRate, m.DRAMMissRate)
	fmt.Printf("I/O time          %v (lookup share %v)\n", m.IOTime, m.QueryTime)
	fmt.Printf("prefetch time     %v (%d blocks)\n", m.PrefetchTime, m.Prefetches)
	fmt.Printf("render time       %v\n", m.RenderTime)
	fmt.Printf("total time        %v\n", m.TotalTime)
	fmt.Printf("mean visible set  %.1f blocks\n", m.MeanVisible)
	fmt.Printf("demand fetches    %d\n", m.DemandFetches)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vizsim:", err)
	os.Exit(1)
}
