package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkFrame-8   \t   21964\t     54675 ns/op\t   11212 B/op\t     149 allocs/op")
	if !ok {
		t.Fatal("full -benchmem line rejected")
	}
	want := Result{Name: "BenchmarkFrame-8", Iterations: 21964, NsPerOp: 54675, BytesPerOp: 11212, AllocsPerOp: 149}
	if r != want {
		t.Errorf("got %+v, want %+v", r, want)
	}

	r, ok = parseLine("BenchmarkHistogramAddAll-8   245190   4892 ns/op   3348.92 MB/s")
	if !ok {
		t.Fatal("MB/s line rejected")
	}
	if r.MBPerSec != 3348.92 || r.NsPerOp != 4892 {
		t.Errorf("got %+v", r)
	}

	for _, bad := range []string{
		"ok  \trepro/internal/ooc\t2.463s",
		"PASS",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("accepted non-benchmark line %q", bad)
		}
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFrame-8":       "BenchmarkFrame",
		"BenchmarkFrame-128":     "BenchmarkFrame",
		"BenchmarkFrame":         "BenchmarkFrame",
		"BenchmarkGet-cold-16":   "BenchmarkGet-cold",
		"BenchmarkGet-cold":      "BenchmarkGet-cold",
		"BenchmarkObserve/p99-4": "BenchmarkObserve/p99",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCompare pins the -check gate: a regression past the threshold fails,
// growth inside it passes, and benchmarks missing from either side are
// ignored rather than failing the gate.
func TestCompare(t *testing.T) {
	baseline := File{Results: []Result{
		{Name: "BenchmarkFrame", NsPerOp: 10000},
		{Name: "BenchmarkGet", NsPerOp: 200},
		{Name: "BenchmarkRetired", NsPerOp: 50},
	}}
	current := File{Results: []Result{
		{Name: "BenchmarkFrame-8", NsPerOp: 12000}, // +20%: inside a 25% limit
		{Name: "BenchmarkGet-8", NsPerOp: 300},     // +50%: regression
		{Name: "BenchmarkNew-8", NsPerOp: 1},       // no baseline: ignored
	}}
	compared, regs := compare(baseline, current, 25)
	if compared != 2 {
		t.Errorf("compared %d benchmarks, want 2", compared)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkGet") {
		t.Errorf("regressions = %q, want exactly BenchmarkGet", regs)
	}
	if _, regs := compare(baseline, current, 60); len(regs) != 0 {
		t.Errorf("60%% limit still flags: %q", regs)
	}
	if compared, _ := compare(File{}, current, 25); compared != 0 {
		t.Errorf("empty baseline compared %d benchmarks", compared)
	}
}

// TestCompareMemoryGates pins the -benchmem gates: B/op and allocs/op
// regressions fail even when ns/op is flat, and a baseline recorded without
// -benchmem data (zero dimensions) never gates them.
func TestCompareMemoryGates(t *testing.T) {
	baseline := File{Results: []Result{
		{Name: "BenchmarkFrame", NsPerOp: 10000, BytesPerOp: 1000, AllocsPerOp: 40},
		{Name: "BenchmarkOld", NsPerOp: 10000}, // pre-benchmem record: ns/op only
	}}
	current := File{Results: []Result{
		{Name: "BenchmarkFrame-8", NsPerOp: 10000, BytesPerOp: 2000, AllocsPerOp: 80},
		{Name: "BenchmarkOld-8", NsPerOp: 10000, BytesPerOp: 1 << 30, AllocsPerOp: 1 << 20},
	}}
	compared, regs := compare(baseline, current, 25)
	if compared != 2 {
		t.Errorf("compared %d benchmarks, want 2", compared)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %q, want B/op and allocs/op for BenchmarkFrame", regs)
	}
	if !strings.Contains(regs[0], "B/op") || !strings.Contains(regs[1], "allocs/op") {
		t.Errorf("regressions = %q, want one B/op and one allocs/op", regs)
	}
	for _, r := range regs {
		if strings.Contains(r, "BenchmarkOld") {
			t.Errorf("zero-dimension baseline gated: %q", r)
		}
	}
	// Inside the limit: +20% on every dimension passes.
	ok := File{Results: []Result{
		{Name: "BenchmarkFrame-8", NsPerOp: 12000, BytesPerOp: 1200, AllocsPerOp: 48},
	}}
	if _, regs := compare(baseline, ok, 25); len(regs) != 0 {
		t.Errorf("within-limit run flagged: %q", regs)
	}
}

func TestParseStream(t *testing.T) {
	in := strings.NewReader(`goos: linux
goversion: go1.24.0
BenchmarkFrame-8   21964   54675 ns/op   11212 B/op   149 allocs/op
PASS
ok  	repro/internal/ooc	2.463s
`)
	var echo strings.Builder
	doc, err := parseStream(in, &echo)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 1 || doc.Results[0].Name != "BenchmarkFrame-8" {
		t.Errorf("results = %+v", doc.Results)
	}
	if doc.GoVersion != "go1.24.0" {
		t.Errorf("go version = %q", doc.GoVersion)
	}
	if !strings.Contains(echo.String(), "PASS") {
		t.Error("input not echoed through")
	}
	if _, err := parseStream(strings.NewReader("PASS\n"), &echo); err == nil {
		t.Error("benchmark-free input accepted")
	}
}
