package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkFrame-8   \t   21964\t     54675 ns/op\t   11212 B/op\t     149 allocs/op")
	if !ok {
		t.Fatal("full -benchmem line rejected")
	}
	want := Result{Name: "BenchmarkFrame-8", Iterations: 21964, NsPerOp: 54675, BytesPerOp: 11212, AllocsPerOp: 149}
	if r != want {
		t.Errorf("got %+v, want %+v", r, want)
	}

	r, ok = parseLine("BenchmarkHistogramAddAll-8   245190   4892 ns/op   3348.92 MB/s")
	if !ok {
		t.Fatal("MB/s line rejected")
	}
	if r.MBPerSec != 3348.92 || r.NsPerOp != 4892 {
		t.Errorf("got %+v", r)
	}

	for _, bad := range []string{
		"ok  \trepro/internal/ooc\t2.463s",
		"PASS",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("accepted non-benchmark line %q", bad)
		}
	}
}
