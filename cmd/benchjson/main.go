// Command benchjson converts `go test -bench` output on stdin into a JSON
// results file, so benchmark numbers can be committed and diffed across PRs
// instead of living in terminal scrollback.
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/ooc/... | benchjson -out results/BENCH_ooc.json
//	go test -bench=. -benchmem ./internal/ooc/... | benchjson -check results/BENCH_ooc.json
//
// With -out, parsed results are recorded. With -check, they are compared
// against the named baseline instead: any benchmark present in both whose
// ns/op — or, when the baseline carries -benchmem data, B/op or allocs/op —
// regressed by more than -max-regress percent fails the run — the
// repo's perf gate. Benchmark names are matched with their -GOMAXPROCS
// suffix stripped, so a baseline recorded as "BenchmarkFrame" gates a run
// reported as "BenchmarkFrame-8".
//
// Non-benchmark lines (package headers, PASS/ok, warmup noise) are ignored,
// so the raw `go test` stream can be piped straight through. The input is
// also echoed to stdout so the pipeline stays readable in a terminal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"` // e.g. BenchmarkFrame-8
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`  // -benchmem
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"` // -benchmem
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`    // b.SetBytes
}

// File is the on-disk document.
type File struct {
	GoVersion string   `json:"go_version,omitempty"`
	Results   []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "output JSON path (record mode)")
	check := flag.String("check", "", "baseline JSON path (compare mode)")
	maxRegress := flag.Float64("max-regress", 25,
		"with -check: fail if ns/op regresses more than this percent")
	flag.Parse()
	if (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchjson: exactly one of -out or -check is required")
		os.Exit(2)
	}

	doc, err := parseStream(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	if *check != "" {
		buf, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var baseline File
		if err := json.Unmarshal(buf, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *check, err)
			os.Exit(1)
		}
		compared, regressions := compare(baseline, doc, *maxRegress)
		if compared == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: no benchmark on stdin matches the baseline %s\n", *check)
			os.Exit(1)
		}
		for _, msg := range regressions {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s\n", msg)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) within %.0f%% of %s\n",
			compared, *maxRegress, *check)
		return
	}

	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(doc.Results), *out)
}

// parseStream parses benchmark lines from r, echoing every line to echo.
func parseStream(r io.Reader, echo io.Writer) (File, error) {
	doc := File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		if res, ok := parseLine(line); ok {
			doc.Results = append(doc.Results, res)
		} else if v, ok := strings.CutPrefix(line, "goversion: "); ok {
			doc.GoVersion = v
		}
	}
	if err := sc.Err(); err != nil {
		return doc, fmt.Errorf("reading input: %v", err)
	}
	if len(doc.Results) == 0 {
		return doc, fmt.Errorf("no benchmark lines found on stdin")
	}
	return doc, nil
}

// normalizeName strips the -GOMAXPROCS suffix go test appends, so results
// recorded on machines with different core counts still match up.
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compare gates current against baseline: for every benchmark present in
// both (by normalized name), ns/op may grow by at most maxRegress percent,
// and — when the baseline recorded them (-benchmem) — so may B/op and
// allocs/op, which catch allocation regressions long before they cost
// enough wall time to trip the ns/op gate. A zero baseline dimension is
// skipped: an older record without -benchmem data must not gate it.
// Returns the number of benchmarks compared and a message per regression.
// Benchmarks only in one document are ignored — adding or retiring a
// benchmark must not break the gate.
func compare(baseline, current File, maxRegress float64) (int, []string) {
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[normalizeName(r.Name)] = r
	}
	compared := 0
	var regressions []string
	for _, cur := range current.Results {
		b, ok := base[normalizeName(cur.Name)]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		compared++
		gate := func(unit string, curV, baseV float64) {
			if baseV <= 0 {
				return
			}
			if limit := baseV * (1 + maxRegress/100); curV > limit {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.0f %s vs baseline %.0f %s (+%.1f%%, limit +%.0f%%)",
					normalizeName(cur.Name), curV, unit, baseV, unit,
					100*(curV/baseV-1), maxRegress))
			}
		}
		gate("ns/op", cur.NsPerOp, b.NsPerOp)
		gate("B/op", float64(cur.BytesPerOp), float64(b.BytesPerOp))
		gate("allocs/op", float64(cur.AllocsPerOp), float64(b.AllocsPerOp))
	}
	return compared, regressions
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFrame-8   21964   54675 ns/op   11212 B/op   149 allocs/op
//	BenchmarkHistogramAddAll-8   245190   4892 ns/op   3348.92 MB/s
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(val, 64)
			seen = err == nil
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "MB/s":
			r.MBPerSec, _ = strconv.ParseFloat(val, 64)
		}
	}
	return r, seen
}
