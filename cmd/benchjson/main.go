// Command benchjson converts `go test -bench` output on stdin into a JSON
// results file, so benchmark numbers can be committed and diffed across PRs
// instead of living in terminal scrollback.
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/ooc/... | benchjson -out results/BENCH_ooc.json
//
// Non-benchmark lines (package headers, PASS/ok, warmup noise) are ignored,
// so the raw `go test` stream can be piped straight through. The input is
// also echoed to stdout so the pipeline stays readable in a terminal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`               // e.g. BenchmarkFrame-8
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`  // -benchmem
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"` // -benchmem
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`    // b.SetBytes
}

// File is the on-disk document.
type File struct {
	GoVersion string   `json:"go_version,omitempty"`
	Results   []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "output JSON path (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	doc := File{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parseLine(line); ok {
			doc.Results = append(doc.Results, r)
		} else if v, ok := strings.CutPrefix(line, "goversion: "); ok {
			doc.GoVersion = v
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(doc.Results), *out)
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFrame-8   21964   54675 ns/op   11212 B/op   149 allocs/op
//	BenchmarkHistogramAddAll-8   245190   4892 ns/op   3348.92 MB/s
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(val, 64)
			seen = err == nil
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "MB/s":
			r.MBPerSec, _ = strconv.ParseFloat(val, 64)
		}
	}
	return r, seen
}
