// Command entropymap prints the per-block entropy map (T_important, §IV-C)
// of a dataset: the ranking that drives importance pre-loading and
// prefetch filtering.
//
// Usage:
//
//	entropymap -dataset lifted_rr -scale 0.125 -blocks 1024 [-top 20]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/entropy"
	"repro/internal/report"
	"repro/internal/volume"
)

func main() {
	var (
		dataset = flag.String("dataset", "3d_ball", "dataset name")
		scale   = flag.Float64("scale", 0.125, "dataset scale factor")
		blocks  = flag.Int("blocks", 1024, "approximate block count")
		top     = flag.Int("top", 20, "how many top-entropy blocks to list")
		vars    = flag.Int("climate-vars", 8, "climate variable count")
	)
	flag.Parse()
	ds := volume.ByName(*dataset)
	if ds == nil {
		fmt.Fprintf(os.Stderr, "entropymap: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	ds = ds.Scale(*scale)
	if ds.Name == "climate" {
		ds = ds.WithVariables(*vars)
	}
	g, err := ds.GridWithBlockCount(*blocks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "entropymap:", err)
		os.Exit(1)
	}
	tab := entropy.Build(ds, g, entropy.Options{})

	fmt.Printf("dataset %s %v, %d blocks of %v\n", ds.Name, ds.Res, g.NumBlocks(), g.BlockSize())
	fmt.Printf("entropy: max %.3f bits, σ(top 25%%) = %.3f, σ(top 50%%) = %.3f\n\n",
		tab.MaxScore(), tab.ThresholdForQuantile(0.25), tab.ThresholdForQuantile(0.5))

	tb := report.NewTable(fmt.Sprintf("top %d blocks by entropy", *top),
		"rank", "block", "coords", "entropy (bits)", "center")
	for i, id := range tab.TopN(*top) {
		bx, by, bz := g.Coords(id)
		tb.AddRow(i+1, int(id), fmt.Sprintf("(%d,%d,%d)", bx, by, bz),
			tab.Score(id), g.Center(id))
	}
	if err := tb.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "entropymap:", err)
		os.Exit(1)
	}
}
