package vizcache

import (
	"bytes"
	"image/png"
	"testing"
)

func TestDatasetCatalogFacade(t *testing.T) {
	if len(Datasets()) != 4 {
		t.Fatalf("Datasets = %d", len(Datasets()))
	}
	if DatasetByName("3d_ball") == nil || DatasetByName("x") != nil {
		t.Error("DatasetByName broken")
	}
	ball := Ball()
	if ball.Res.X != 1024 {
		t.Errorf("Ball res = %v", ball.Res)
	}
}

func TestPolicyConstructorsFacade(t *testing.T) {
	policies := []Policy{NewFIFO(), NewLRU(), NewClock(), NewLFU(), NewARC(8), NewBelady(nil)}
	for _, p := range policies {
		if p.Name() == "" {
			t.Error("unnamed policy")
		}
		p.Insert(BlockID(1))
		if !p.Contains(1) {
			t.Errorf("%s: Insert/Contains broken", p.Name())
		}
	}
}

func TestPathGeneratorsFacade(t *testing.T) {
	if SphericalPath(3, 5, 10).Len() != 10 {
		t.Error("SphericalPath")
	}
	if RandomPath(2, 4, 5, 10, 10, 1).Len() != 10 {
		t.Error("RandomPath")
	}
	if ZoomPath(Vec(1, 0, 0), 4, 2, 10).Len() != 10 {
		t.Error("ZoomPath")
	}
	if OrbitPath(3, 10).Len() != 10 {
		t.Error("OrbitPath")
	}
}

func TestRunnersFacade(t *testing.T) {
	ds := Ball().Scale(1.0 / 16)
	g, err := ds.GridWithBlockCount(512)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SimConfig{
		Dataset:    ds,
		Grid:       g,
		Path:       OrbitPath(3, 20),
		ViewAngle:  0.17,
		CacheRatio: 0.5,
	}
	lru, err := RunBaseline(cfg, func() Policy { return NewLRU() }, "LRU")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := RunAppAware(cfg, AppAwareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.MissRate >= lru.MissRate {
		t.Errorf("OPT %.3f >= LRU %.3f", opt.MissRate, lru.MissRate)
	}
}

func TestBuildImportanceFacade(t *testing.T) {
	ds := Ball().Scale(1.0 / 16)
	g, _ := ds.GridWithBlockCount(512)
	imp := BuildImportance(ds, g)
	if imp.Len() != g.NumBlocks() {
		t.Errorf("importance len = %d", imp.Len())
	}
	if imp.MaxScore() <= 0 {
		t.Error("no entropy found")
	}
}

func TestVisibleBlocksFacade(t *testing.T) {
	ds := Ball().Scale(1.0 / 16)
	g, _ := ds.GridWithBlockCount(512)
	set := VisibleBlocks(g, Camera{Pos: Vec(0, 0, 3), ViewAngle: 0.26})
	if len(set) == 0 || len(set) >= g.NumBlocks() {
		t.Errorf("visible = %d of %d", len(set), g.NumBlocks())
	}
}

func TestViewerSession(t *testing.T) {
	ds := Ball().Scale(1.0 / 16)
	v, err := NewViewer(ds, ViewerOptions{Blocks: 512})
	if err != nil {
		t.Fatal(err)
	}
	if v.Grid().NumBlocks() != 512 {
		t.Errorf("blocks = %d", v.Grid().NumBlocks())
	}
	path := OrbitPath(3, 15)
	var lastIO FrameStats
	for i, pos := range path.Steps {
		st := v.Goto(pos)
		if st.Step != i {
			t.Fatalf("step = %d, want %d", st.Step, i)
		}
		if st.VisibleBlocks == 0 {
			t.Fatalf("no visible blocks at step %d", i)
		}
		lastIO = st
	}
	_ = lastIO
	m := v.Metrics()
	if m.Steps != 15 {
		t.Errorf("Steps = %d", m.Steps)
	}
	if m.MissRate <= 0 || m.MissRate >= 1 {
		t.Errorf("MissRate = %g", m.MissRate)
	}
	if len(v.Visible()) == 0 {
		t.Error("Visible empty after Goto")
	}
	// Revisiting the orbit start is cheap: most blocks cached.
	st := v.Goto(path.Steps[0])
	if st.IOTime > lastIO.IOTime && st.IOTime > 0 {
		// Revisit should not cost more than a fresh frame; tolerate only
		// equality or less.
		t.Errorf("revisit IOTime %v > cold %v", st.IOTime, lastIO.IOTime)
	}
}

func TestViewerRenderPNG(t *testing.T) {
	ds := Ball().Scale(1.0 / 32)
	v, err := NewViewer(ds, ViewerOptions{Blocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.RenderPNG(&bytes.Buffer{}, 8, 8); err == nil {
		t.Error("RenderPNG before Goto should fail")
	}
	v.Goto(Vec(0, 0, 3))
	var buf bytes.Buffer
	if err := v.RenderPNG(&buf, 16, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestViewerAnalytics(t *testing.T) {
	ds := Climate().Scale(0.2).WithVariables(4)
	v, err := NewViewer(ds, ViewerOptions{Blocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	// All analytics fail before the first Goto.
	if _, err := v.Histogram(0, 8); err == nil {
		t.Error("Histogram before Goto succeeded")
	}
	if _, err := v.Correlation([]int{0, 1}); err == nil {
		t.Error("Correlation before Goto succeeded")
	}
	if _, err := v.Stats(0); err == nil {
		t.Error("Stats before Goto succeeded")
	}
	v.Goto(Vec(0, 0, 3))
	h, err := v.Histogram(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() == 0 {
		t.Error("empty histogram")
	}
	m, err := v.Correlation([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m[0][0] != 1 {
		t.Errorf("correlation = %v", m)
	}
	st, err := v.Stats(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count == 0 || st.Min > st.Max {
		t.Errorf("stats = %+v", st)
	}
}

func TestViewerValidation(t *testing.T) {
	if _, err := NewViewer(nil, ViewerOptions{}); err == nil {
		t.Error("nil dataset accepted")
	}
	ds := Ball().Scale(1.0 / 32)
	// Explicit block size is honored.
	v, err := NewViewer(ds, ViewerOptions{BlockSize: Dims{X: 16, Y: 16, Z: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Grid().BlockSize() != (Dims{X: 16, Y: 16, Z: 16}) {
		t.Errorf("block size = %v", v.Grid().BlockSize())
	}
}

func TestTablePersistenceFacade(t *testing.T) {
	ds := Ball().Scale(1.0 / 32)
	g, err := ds.GridWithBlockCount(64)
	if err != nil {
		t.Fatal(err)
	}
	imp := BuildImportance(ds, g)
	var buf bytes.Buffer
	if err := imp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadImportance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != imp.Len() {
		t.Errorf("reloaded len = %d", back.Len())
	}
	// A reloaded importance table drives a simulation unchanged.
	cfg := SimConfig{
		Dataset: ds, Grid: g,
		Path:      OrbitPath(3, 10),
		ViewAngle: 0.17, CacheRatio: 0.5,
	}
	a, err := RunAppAware(cfg, AppAwareConfig{Importance: imp})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAppAware(cfg, AppAwareConfig{Importance: back})
	if err != nil {
		t.Fatal(err)
	}
	if a.MissRate != b.MissRate {
		t.Errorf("reloaded table changed results: %g vs %g", a.MissRate, b.MissRate)
	}
}

func TestQueryFacade(t *testing.T) {
	ds := LiftedRR().Scale(1.0 / 16)
	g, err := ds.GridWithBlockCount(128)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := BuildSummaries(ds, g, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := sums.Select(Query{{Variable: 0, Min: 0.4, Max: 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 || len(sel) >= g.NumBlocks() {
		t.Errorf("flame query selected %d of %d", len(sel), g.NumBlocks())
	}
	// AutoTransfer composes with the facade transfer functions.
	tf := AutoTransfer([]int64{100, 10, 1}, Hot)
	if _, _, _, a := tf(0.5); a < 0 || a > 1 {
		t.Errorf("auto opacity = %g", a)
	}
}

func TestTransferFuncsFacade(t *testing.T) {
	for _, tf := range []TransferFunc{Grayscale, Hot, CoolWarm, Isosurface(0.5, 0.1, Hot)} {
		r, g, b, a := tf(0.5)
		for _, c := range []float64{r, g, b, a} {
			if c < 0 || c > 1 {
				t.Error("transfer func out of range")
			}
		}
	}
}
