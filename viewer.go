package vizcache

import (
	"fmt"
	"io"
	"time"

	"repro/internal/analytics"
	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/memhier"
	"repro/internal/policy"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/vec"
	"repro/internal/visibility"
)

// ViewerOptions configures an interactive Viewer session.
type ViewerOptions struct {
	// Blocks is the approximate number of blocks to partition the dataset
	// into (default 1024). BlockSize overrides it when non-zero.
	Blocks    int
	BlockSize Dims
	// ViewAngleDeg is the full frustum angle (default 10°).
	ViewAngleDeg float64
	// CacheRatio between successive memory levels (default 0.5).
	CacheRatio float64
	// SigmaQuantile selects the entropy threshold σ as the fraction of
	// blocks above it (default 0.75).
	SigmaQuantile float64
	// Variable selects the rendered/scored variable (default 0).
	Variable int
	// DistanceRange bounds the exploration domain Ω ([min, max] camera
	// distances); the default covers [1.2, 2.4]× the volume's enclosing
	// radius.
	DistanceRange [2]float64
	// SamplingPositions sizes T_visible (default 25,920, the paper's
	// Fig. 7 sweet spot).
	SamplingPositions int
	// TransferFunc used by RenderPNG (default Grayscale).
	TransferFunc TransferFunc
}

func (o ViewerOptions) withDefaults(g *grid.Grid) ViewerOptions {
	if o.Blocks == 0 {
		o.Blocks = 1024
	}
	if o.ViewAngleDeg == 0 {
		o.ViewAngleDeg = 10
	}
	if o.CacheRatio == 0 {
		o.CacheRatio = 0.5
	}
	if o.SigmaQuantile == 0 {
		o.SigmaQuantile = 0.75
	}
	if o.DistanceRange == ([2]float64{}) {
		r := g.EnclosingRadius()
		o.DistanceRange = [2]float64{1.2 * r, 2.4 * r}
	}
	if o.SamplingPositions == 0 {
		o.SamplingPositions = 25920
	}
	if o.TransferFunc == nil {
		o.TransferFunc = Grayscale
	}
	return o
}

// FrameStats reports one Goto step.
type FrameStats struct {
	// Step is the 0-based view-point index.
	Step int
	// VisibleBlocks is the size of the exact visible set.
	VisibleBlocks int
	// IOTime is the demand I/O spent before the frame could render.
	IOTime time.Duration
	// PrefetchTime is the overlapped prefetch transfer time.
	PrefetchTime time.Duration
	// Prefetches counts blocks prefetched during this frame.
	Prefetches int
}

// Viewer is an interactive out-of-core visualization session: it owns the
// block grid, the importance and visibility tables, a simulated memory
// hierarchy driven by the application-aware policy, and a software
// renderer. It is not safe for concurrent use.
type Viewer struct {
	ds   *Dataset
	g    *grid.Grid
	imp  *entropy.Table
	vis  *visibility.Table
	h    *memhier.Hierarchy
	ctrl *policy.AppAware
	opts ViewerOptions

	step    int
	pos     vec.V3
	visible []grid.BlockID
}

// NewViewer prepares an interactive session: partitions the dataset, builds
// T_important and (lazily) T_visible, sizes the DRAM/SSD/HDD hierarchy, and
// pre-loads important blocks per Algorithm 1.
func NewViewer(ds *Dataset, opts ViewerOptions) (*Viewer, error) {
	if ds == nil {
		return nil, fmt.Errorf("vizcache: nil dataset")
	}
	probe := opts
	if probe.Blocks == 0 {
		probe.Blocks = 1024
	}
	var g *grid.Grid
	var err error
	if probe.BlockSize != (Dims{}) {
		g, err = ds.Grid(probe.BlockSize)
	} else {
		g, err = ds.GridWithBlockCount(probe.Blocks)
	}
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults(g)

	imp := entropy.Build(ds, g, entropy.Options{Variable: opts.Variable})
	nAz, nEl, nDist := visibility.LatticeForTotal(opts.SamplingPositions, 10)
	theta := vec.Radians(opts.ViewAngleDeg)
	vis, err := visibility.NewTable(g, visibility.Options{
		NAzimuth:   nAz,
		NElevation: nEl,
		NDistance:  nDist,
		RMin:       opts.DistanceRange[0],
		RMax:       opts.DistanceRange[1],
		ViewAngle:  theta,
		Radius:     sim.DefaultRadiusStrategy(sim.Config{CacheRatio: opts.CacheRatio}),
		Lazy:       true,
	})
	if err != nil {
		return nil, err
	}
	h, err := memhier.New(
		memhier.StandardConfig(ds.TotalBytes(), opts.CacheRatio,
			func() cache.Policy { return cache.NewLRU() }),
		func(id grid.BlockID) int64 { return g.Bytes(id, ds.ValueSize, ds.Variables) },
	)
	if err != nil {
		return nil, err
	}
	sigma := imp.ThresholdForQuantile(opts.SigmaQuantile)
	ctrl, err := policy.New(h, vis, imp, policy.DefaultOptions(sigma))
	if err != nil {
		return nil, err
	}
	return &Viewer{ds: ds, g: g, imp: imp, vis: vis, h: h, ctrl: ctrl, opts: opts}, nil
}

// Grid returns the viewer's block grid.
func (v *Viewer) Grid() *Grid { return v.g }

// Importance returns the viewer's T_important.
func (v *Viewer) Importance() *ImportanceTable { return v.imp }

// Visibility returns the viewer's T_visible.
func (v *Viewer) Visibility() *VisibilityTable { return v.vis }

// Goto moves the camera to pos: the visible set is computed, missing blocks
// are fetched under the application-aware policy, and the vicinity's
// predicted blocks are prefetched.
func (v *Viewer) Goto(pos V3) FrameStats {
	cam := camera.Camera{Pos: pos, ViewAngle: vec.Radians(v.opts.ViewAngleDeg)}
	visible := visibility.VisibleSet(v.g, cam)
	res := v.ctrl.Step(v.step, pos, visible, 0)
	stats := FrameStats{
		Step:          v.step,
		VisibleBlocks: len(visible),
		IOTime:        res.IOTime + res.QueryCost,
		PrefetchTime:  res.PrefetchTime,
		Prefetches:    res.Prefetches,
	}
	v.pos = pos
	v.visible = visible
	v.step++
	return stats
}

// Visible returns the current view point's visible blocks (nil before the
// first Goto). The slice is owned by the viewer.
func (v *Viewer) Visible() []BlockID { return v.visible }

// Metrics summarizes the session so far.
func (v *Viewer) Metrics() Metrics {
	levels := v.h.Levels()
	return Metrics{
		Policy:       v.ctrl.Name(),
		Steps:        v.step,
		MissRate:     v.h.TotalMissRate(),
		DRAMMissRate: levels[0].MissRate(),
		IOTime:       v.h.DemandTime,
		PrefetchTime: v.h.PrefetchTime,
	}
}

// analyticsSampling bounds per-block sampling for the Viewer's analytic
// panels; live Fig. 3-style graphs trade exactness for refresh rate.
const analyticsSampling = 6

// Histogram returns the distribution of a variable over the blocks visible
// from the current view point (the paper's Fig. 3 per-view histograms).
// It fails before the first Goto.
func (v *Viewer) Histogram(variable, bins int) (*entropy.Histogram, error) {
	if len(v.visible) == 0 {
		return nil, fmt.Errorf("vizcache: Histogram before any Goto")
	}
	return analytics.RegionHistogram(v.ds, v.g, v.visible, variable, bins, analyticsSampling)
}

// Correlation returns the Pearson correlation matrix of the given variables
// over the currently visible region (Fig. 3's correlation matrix).
func (v *Viewer) Correlation(vars []int) ([][]float64, error) {
	if len(v.visible) == 0 {
		return nil, fmt.Errorf("vizcache: Correlation before any Goto")
	}
	return analytics.CorrelationMatrix(v.ds, v.g, v.visible, vars, analyticsSampling)
}

// Stats summarizes a variable over the currently visible region.
func (v *Viewer) Stats(variable int) (analytics.Stats, error) {
	if len(v.visible) == 0 {
		return analytics.Stats{}, fmt.Errorf("vizcache: Stats before any Goto")
	}
	return analytics.RegionStats(v.ds, v.g, v.visible, variable, analyticsSampling)
}

// RenderPNG ray-casts the current view point into a width×height PNG.
func (v *Viewer) RenderPNG(w io.Writer, width, height int) error {
	if v.step == 0 {
		return fmt.Errorf("vizcache: RenderPNG before any Goto")
	}
	rd := &render.Renderer{
		DS:       v.ds,
		G:        v.g,
		Variable: v.opts.Variable,
		TF:       v.opts.TransferFunc,
	}
	frame := rd.Render(v.pos, vec.Radians(v.opts.ViewAngleDeg), width, height)
	return frame.WritePNG(w)
}
