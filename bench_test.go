package vizcache

// The benchmark harness regenerates every paper table/figure (one benchmark
// per artifact; see DESIGN.md §4) at a reduced scale per iteration, plus
// microbenchmarks for the load-bearing components. Key result quantities
// are attached via b.ReportMetric so `go test -bench` output captures the
// reproduced series; cmd/repro prints the full tables.

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/radius"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

// benchOpts keeps per-iteration cost low while preserving every
// experiment's structure.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 0.0625, Steps: 20, ClimateVars: 4}
}

func reportSeries(b *testing.B, res *experiments.Result, key, metric string) {
	s := res.Series[key]
	if len(s) == 0 {
		b.Fatalf("missing series %q", key)
	}
	b.ReportMetric(s[len(s)-1], metric)
}

// BenchmarkTable1Datasets regenerates Table I (dataset inventory).
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Table.Rows) != 4 {
			b.Fatal("wrong dataset count")
		}
	}
}

// BenchmarkFig7Sampling regenerates Fig. 7: miss rate and I/O time vs
// sampling-position count. Reported metric: the 3d_ball I/O time (ms) at
// the densest lattice relative to the sparsest (>1 demonstrates the
// lookup-overhead effect).
func BenchmarkFig7Sampling(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		io := res.Series["3d_ball/iotime_ms"]
		ratio = io[len(io)-1] / io[0]
	}
	b.ReportMetric(ratio, "dense/sparse-io-ratio")
}

// BenchmarkFig9BlockSize regenerates Fig. 9: miss rate vs block division
// across 15 camera-path panels under FIFO/LRU/OPT.
func BenchmarkFig9BlockSize(b *testing.B) {
	var optOverLRU float64
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Steps = 10
		res, err := experiments.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		opt := res.Series["spherical-10deg/OPT"]
		lru := res.Series["spherical-10deg/LRU"]
		optOverLRU = opt[2] / lru[2]
	}
	b.ReportMetric(optOverLRU, "opt/lru-missrate")
}

// BenchmarkFig11Radius regenerates Fig. 11: I/O+prefetch time per vicinal
// radius strategy on lifted_rr.
func BenchmarkFig11Radius(b *testing.B) {
	var dynamicOverBest float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		s := res.Series["io_prefetch_ms"]
		best := s[0]
		for _, v := range s {
			if v < best {
				best = v
			}
		}
		dynamicOverBest = s[0] / best
	}
	b.ReportMetric(dynamicOverBest, "eq6/best-ratio")
}

// BenchmarkFig12CameraPaths regenerates Fig. 12: miss rate across spherical
// and random paths for FIFO/LRU/OPT on 3d_ball (2048 blocks).
func BenchmarkFig12CameraPaths(b *testing.B) {
	var optOverLRU float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		optOverLRU = res.Series["random/OPT"][2] / res.Series["random/LRU"][2]
	}
	b.ReportMetric(optOverLRU, "opt/lru-missrate@10-15deg")
}

// BenchmarkFig13Latency regenerates Fig. 13: total time under cache ratios
// 0.5 and 0.7. Reported metric: OPT's speedup over LRU at 0-5° / ratio 0.7.
func BenchmarkFig13Latency(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		lru := res.Series["r0.7/LRU"][0]
		opt := res.Series["r0.7/OPT"][0]
		speedup = (lru - opt) / lru
	}
	b.ReportMetric(speedup, "opt-speedup@0.7")
}

// BenchmarkAblationComponents toggles Algorithm 1's mechanisms.
func BenchmarkAblationComponents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationComponents(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSigma sweeps the entropy threshold σ.
func BenchmarkAblationSigma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSigma(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPolicies runs the policy zoo + Belady bound.
func BenchmarkAblationPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPolicies(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPrefetchWindow compares unbounded vs windowed prefetch.
func BenchmarkAblationPrefetchWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPrefetchWindow(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component microbenchmarks ---

func benchGrid(b *testing.B) (*volume.Dataset, *grid.Grid) {
	b.Helper()
	ds := volume.Ball().Scale(0.125)
	g, err := ds.GridWithBlockCount(2048)
	if err != nil {
		b.Fatal(err)
	}
	return ds, g
}

// BenchmarkVisibleSet measures the per-frame exact visibility test (Eq. 1
// over all blocks).
func BenchmarkVisibleSet(b *testing.B) {
	_, g := benchGrid(b)
	cam := camera.Camera{Pos: vec.New(0.4, 0.8, 2.8), ViewAngle: vec.Radians(10)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if set := visibility.VisibleSet(g, cam); len(set) == 0 {
			b.Fatal("empty visible set")
		}
	}
}

// BenchmarkEntropyBuild measures T_important construction (parallel block
// entropy scoring).
func BenchmarkEntropyBuild(b *testing.B) {
	ds, g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := entropy.Build(ds, g, entropy.Options{})
		if tab.MaxScore() <= 0 {
			b.Fatal("no entropy")
		}
	}
}

// BenchmarkVisibilityTableKey measures one lazy T_visible key
// materialization (vicinal dilated visible set).
func BenchmarkVisibilityTableKey(b *testing.B) {
	_, g := benchGrid(b)
	tab, err := visibility.NewTable(g, visibility.Options{
		NAzimuth: 72, NElevation: 36, NDistance: 10,
		RMin: 2.5, RMax: 3.5,
		ViewAngle: vec.Radians(10),
		Radius:    radius.Fixed(0.2),
		Lazy:      true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.PredictedSet(i % tab.NumKeys())
	}
}

// BenchmarkNearestKey measures the O(1) lattice lookup.
func BenchmarkNearestKey(b *testing.B) {
	_, g := benchGrid(b)
	tab, err := visibility.NewTable(g, visibility.Options{
		NAzimuth: 72, NElevation: 36, NDistance: 10,
		RMin: 2.5, RMax: 3.5,
		ViewAngle: vec.Radians(10),
		Radius:    radius.Fixed(0.2),
		Lazy:      true,
	})
	if err != nil {
		b.Fatal(err)
	}
	pos := vec.New(1.1, -0.7, 2.6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.NearestKey(pos)
	}
}

// BenchmarkPolicyOps measures raw replacement-policy operation cost.
func BenchmarkPolicyOps(b *testing.B) {
	for _, mk := range []struct {
		name string
		f    cache.Factory
	}{
		{"FIFO", func() cache.Policy { return cache.NewFIFO() }},
		{"LRU", func() cache.Policy { return cache.NewLRU() }},
		{"CLOCK", func() cache.Policy { return cache.NewClock() }},
		{"LFU", func() cache.Policy { return cache.NewLFU() }},
		{"ARC", func() cache.Policy { return cache.NewARC(256) }},
	} {
		b.Run(mk.name, func(b *testing.B) {
			p := mk.f()
			for i := 0; i < b.N; i++ {
				id := grid.BlockID(i % 512)
				p.Insert(id)
				p.Touch(id)
				if p.Len() > 256 {
					if v, ok := p.Victim(); ok {
						p.Remove(v)
					}
				}
			}
		})
	}
}

// BenchmarkAppAwareStep measures one full Algorithm 1 step (demand fetch +
// prediction + prefetch) in steady state.
func BenchmarkAppAwareStep(b *testing.B) {
	ds, g := benchGrid(b)
	path := camera.Orbit(3, 360)
	cfg := sim.Config{
		Dataset: ds, Grid: g, Path: path,
		ViewAngle: vec.Radians(10), CacheRatio: 0.5,
	}
	// One warm run amortizes table construction; the benchmark then
	// re-runs the whole path per iteration (360 steps each).
	imp := entropy.Build(ds, g, entropy.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunAppAware(cfg, sim.AppAwareConfig{Importance: imp}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(360, "steps/op")
}

// BenchmarkRenderFrame measures the software ray-caster (128×96, 64 steps).
func BenchmarkRenderFrame(b *testing.B) {
	ds, g := benchGrid(b)
	rd := &render.Renderer{DS: ds, G: g, TF: render.Grayscale, Steps: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Render(vec.New(0, 0, 3), vec.Radians(20), 128, 96)
	}
}

// BenchmarkBlockSamples measures on-demand block value extraction.
func BenchmarkBlockSamples(b *testing.B) {
	ds, g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds.BlockSamples(g, grid.BlockID(i%g.NumBlocks()), 0, 8)
	}
}
