// Realio: genuine out-of-core visualization with actual disk I/O — the
// paper's future-work direction (§VI, parallel data fetching). The example
// materializes a block-layout file on disk (bvol v2, checksummed), opens it
// behind a fault injector and a byte-budgeted in-memory cache, and drives
// the concurrent runtime: demand reads are parallel and retried on
// transient faults, and the vicinity's predicted high-entropy blocks are
// prefetched by background workers while each frame "renders".
//
// The injector deliberately fails 5% of reads and corrupts 2% to show the
// fault-tolerance layer at work: retries absorb every transient fault and
// the per-block CRC32C catches every corruption, so all frames complete
// undegraded — the counters at the end prove how much was absorbed.
//
// Run with:
//
//	go run ./examples/realio
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	vizcache "repro"

	"repro/internal/cache"
	"repro/internal/entropy"
	"repro/internal/faultio"
	"repro/internal/ooc"
	"repro/internal/radius"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/visibility"
)

func main() {
	ds := vizcache.LiftedRR().Scale(0.125)
	g, err := ds.GridWithBlockCount(1024)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Materialize the dataset in block layout (one-time, like cmd/datagen).
	dir, err := os.MkdirTemp("", "vizcache-realio")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, ds.Name+".bvol")
	start := time.Now()
	if err := store.Write(path, ds, g, 0); err != nil {
		log.Fatal(err)
	}
	bf, err := store.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer bf.Close()
	fmt.Printf("materialized %s (v%d, %d blocks, %d bytes) in %v\n",
		path, bf.Header().Version, g.NumBlocks(), ds.TotalBytes(),
		time.Since(start).Round(time.Millisecond))

	// 2. A deterministic fault injector between disk and cache: transient
	// failures and in-transit bit flips, as unreliable storage would serve.
	inj := faultio.NewInjector(bf, faultio.InjectorConfig{
		Seed:        1,
		FailRate:    0.05,
		CorruptRate: 0.02,
	})

	// 3. Cache 25% of the data in memory, LRU-managed.
	mc, err := store.NewMemCache(inj, ds.TotalBytes()/4, cache.NewLRU())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Prediction tables (Steps 1-2 of the paper's pipeline).
	imp := entropy.Build(ds, g, entropy.Options{})
	nAz, nEl, nDist := visibility.LatticeForTotal(25920, 10)
	vis, err := visibility.NewTable(g, visibility.Options{
		NAzimuth: nAz, NElevation: nEl, NDistance: nDist,
		RMin: 2.5, RMax: 3.5,
		ViewAngle: vec.Radians(10),
		Radius:    radius.Dynamic{Ratio: 0.25, Min: 0.15},
		Lazy:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. The concurrent out-of-core runtime, with retries and a per-read
	// deadline so one slow block cannot stall a frame.
	rt, err := ooc.New(mc, vis, imp, ooc.Options{
		Sigma:           imp.ThresholdForQuantile(0.75),
		PrefetchWorkers: 4,
		ReadDeadline:    2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	ctx := context.Background()
	theta := vec.Radians(10)
	path2 := vizcache.SphericalPath(3, 5, 90)
	var frameBytes int64
	var degraded int
	wall := time.Now()
	for i, pos := range path2.Steps {
		visible := vizcache.VisibleBlocks(g, vizcache.Camera{Pos: pos, ViewAngle: theta})
		data, rep, err := rt.Frame(ctx, pos, visible)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Degraded {
			// A production renderer would substitute the previous frame's
			// data or a lower LOD for rep.Missing; here we just count it.
			degraded++
		}
		for _, vals := range data {
			frameBytes += int64(len(vals)) * 4
		}
		// "Render": a cheap reduction standing in for ray marching, giving
		// the prefetch workers wall-clock time to run concurrently.
		var sum float64
		for _, vals := range data {
			for _, v := range vals {
				sum += float64(v)
			}
		}
		if i%30 == 0 {
			hits, misses := rt.CacheStats()
			fmt.Printf("frame %2d: %3d blocks, running hit rate %.2f (checksum %.1f)\n",
				i, len(visible), float64(hits)/float64(max64(hits+misses, 1)), sum)
		}
	}
	elapsed := time.Since(wall)

	hits, misses := rt.CacheStats()
	st := rt.Snapshot()
	fmt.Printf("\n%d frames in %v wall clock (%.1f MB touched)\n",
		st.Frames, elapsed.Round(time.Millisecond), float64(frameBytes)/(1<<20))
	fmt.Printf("cache: %d hits / %d misses (hit rate %.2f)\n",
		hits, misses, float64(hits)/float64(max64(hits+misses, 1)))
	fmt.Printf("prefetch: %d issued, %d executed, %d failed, %d dropped\n",
		st.PrefetchIssued, st.PrefetchExecuted, st.PrefetchFailed, st.PrefetchDropped)
	fmt.Printf("faults: %d retries absorbed, %d corruptions caught by CRC, %d reads lost, %d/%d frames degraded\n",
		st.Retries, st.ChecksumErrors, st.FailedReads, degraded, st.Frames)
	inStats := inj.Stats()
	fmt.Printf("injected: %d transient, %d permanent, %d corrupted (%d caught, %d silent) over %d reads\n",
		inStats.Transient, inStats.Permanent, inStats.Corrupted,
		inStats.CorruptCaught, inStats.CorruptSilent, inStats.Reads)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
