// Quickstart: explore the synthetic 3d_ball dataset along a spherical
// camera path with the application-aware policy, then compare its miss rate
// against LRU on the same path.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	vizcache "repro"
)

func main() {
	// A laptop-scale version of the paper's 4 GB 3d_ball dataset.
	ds := vizcache.Ball().Scale(0.125) // 128³
	fmt.Printf("dataset %s %v (%d variables)\n", ds.Name, ds.Res, ds.Variables)

	// Open an interactive session: 1024 blocks, DRAM = 25% of the data.
	viewer, err := vizcache.NewViewer(ds, vizcache.ViewerOptions{Blocks: 1024})
	if err != nil {
		log.Fatal(err)
	}

	// Orbit the volume with 5° per step, like a scientist scrubbing a view.
	path := vizcache.SphericalPath(3, 5, 120)
	for _, pos := range path.Steps {
		st := viewer.Goto(pos)
		if st.Step%30 == 0 {
			fmt.Printf("step %3d: %3d visible blocks, demand I/O %8v, prefetched %d\n",
				st.Step, st.VisibleBlocks, st.IOTime, st.Prefetches)
		}
	}
	m := viewer.Metrics()
	fmt.Printf("\napp-aware session: miss rate %.4f, I/O %v, prefetch %v\n",
		m.MissRate, m.IOTime, m.PrefetchTime)

	// The same exploration under plain LRU for comparison.
	g, err := ds.GridWithBlockCount(1024)
	if err != nil {
		log.Fatal(err)
	}
	cfg := vizcache.SimConfig{
		Dataset:    ds,
		Grid:       g,
		Path:       path,
		ViewAngle:  0.1745, // 10°
		CacheRatio: 0.5,
	}
	lru, err := vizcache.RunBaseline(cfg, func() vizcache.Policy { return vizcache.NewLRU() }, "LRU")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LRU baseline:      miss rate %.4f, I/O %v\n", lru.MissRate, lru.IOTime)
	fmt.Printf("\nmiss-rate reduction vs LRU: %.0f%%\n", 100*(1-m.MissRate/lru.MissRate))
}
