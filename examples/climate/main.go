// Climate: the paper's Figs. 2–3 scenario — a scientist flies a random
// path around a multivariate climate simulation (typhoon + smoke plume)
// while per-view analytics update live: histograms of smoke (PM10-like)
// and wind magnitude, plus a correlation matrix of the primary variables
// over the region currently seen. These data-dependent operations need the
// full-resolution visible blocks, the access pattern the application-aware
// policy is built for.
//
// Run with:
//
//	go run ./examples/climate
package main

import (
	"fmt"
	"log"
	"strings"

	vizcache "repro"
)

func main() {
	// The 244-variable climate dataset at laptop scale with 8 variables.
	ds := vizcache.Climate().Scale(0.5).WithVariables(8)
	fmt.Printf("dataset %s %v, %d variables\n\n", ds.Name, ds.Res, ds.Variables)

	// The climate volume is a flat slab, so a frustum covers a larger
	// fraction of it than of a cube; a 7° view keeps the visible region
	// well inside the DRAM budget.
	viewer, err := vizcache.NewViewer(ds, vizcache.ViewerOptions{
		Blocks:       512,
		ViewAngleDeg: 7,
		TransferFunc: vizcache.CoolWarm,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := viewer.Grid()

	// A random exploration with 10-15° view changes, as in the paper's
	// evaluation paths.
	path := vizcache.RandomPath(2.8, 3.4, 10, 15, 60, 42)
	for _, pos := range path.Steps {
		st := viewer.Goto(pos)
		// Refresh the analytics panel every 20 views, like Fig. 3's
		// dynamically updated graphs.
		if st.Step%20 != 0 {
			continue
		}
		visible := viewer.Visible()
		fmt.Printf("=== view %d: %d visible blocks (I/O %v) ===\n",
			st.Step, len(visible), st.IOTime)

		smoke, err := vizcache.RegionHistogram(ds, g, visible, 0, 10, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("smoke (PM10) histogram:  %s\n", spark(smoke.Counts))
		wind, err := vizcache.RegionHistogram(ds, g, visible, 1, 10, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wind magnitude histogram: %s\n", spark(wind.Counts))

		stats, err := vizcache.RegionStats(ds, g, visible, 0, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("smoke stats: mean %.3f, σ %.3f, range [%.3f, %.3f]\n",
			stats.Mean, stats.StdDev, stats.Min, stats.Max)

		vars := []int{0, 1, 2, 3, 4}
		corr, err := vizcache.CorrelationMatrix(ds, g, visible, vars, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("correlation matrix (smoke, wind, vapor, v3, v4):")
		for _, row := range corr {
			cells := make([]string, len(row))
			for j, r := range row {
				cells[j] = fmt.Sprintf("%+.2f", r)
			}
			fmt.Printf("  %s\n", strings.Join(cells, " "))
		}
		fmt.Println()
	}

	m := viewer.Metrics()
	fmt.Printf("session: %d views, miss rate %.4f, demand I/O %v, prefetch %v\n",
		m.Steps, m.MissRate, m.IOTime, m.PrefetchTime)
}

// spark renders histogram counts as a unicode sparkline.
func spark(counts []int64) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	var max int64 = 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	var sb strings.Builder
	for _, c := range counts {
		idx := int(c * int64(len(levels)-1) / max)
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}
