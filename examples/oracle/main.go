// Oracle: how close does the application-aware policy get to the offline
// optimum? The example records the block request stream of a random
// exploration, replays it against the full online policy zoo (FIFO, LRU,
// CLOCK, LFU, ARC) and Belady's clairvoyant OPT at equal capacity, and
// reports where the paper's app-aware policy lands in between.
//
// Run with:
//
//	go run ./examples/oracle
package main

import (
	"fmt"
	"log"

	vizcache "repro"
)

func main() {
	ds := vizcache.Ball().Scale(0.125)
	g, err := ds.GridWithBlockCount(2048)
	if err != nil {
		log.Fatal(err)
	}
	path := vizcache.RandomPath(2.8, 3.2, 10, 15, 150, 7)
	cfg := vizcache.SimConfig{
		Dataset: ds, Grid: g, Path: path,
		ViewAngle: 0.1745, CacheRatio: 0.5,
	}

	// Full-hierarchy runs: baselines and the app-aware policy.
	fmt.Println("multi-level hierarchy (DRAM 25% / SSD 50% of data):")
	var recorded *vizcache.Trace
	for _, b := range []struct {
		name string
		mk   func() vizcache.Policy
	}{
		{"FIFO", func() vizcache.Policy { return vizcache.NewFIFO() }},
		{"LRU", func() vizcache.Policy { return vizcache.NewLRU() }},
		{"CLOCK", func() vizcache.Policy { return vizcache.NewClock() }},
		{"LFU", func() vizcache.Policy { return vizcache.NewLFU() }},
		{"ARC", func() vizcache.Policy { return vizcache.NewARC(512) }},
	} {
		m, err := vizcache.RunBaseline(cfg, b.mk, b.name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s miss rate %.4f, total %v\n", m.Policy, m.MissRate, m.TotalTime)
		recorded = m.Trace
	}
	opt, err := vizcache.RunAppAware(cfg, vizcache.AppAwareConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-6s miss rate %.4f, total %v  <- the paper's policy\n",
		"OPT", opt.MissRate, opt.TotalTime)

	// Single-level replay at DRAM capacity: the apples-to-apples ground
	// where Belady's offline optimum is defined.
	blockBytes := g.Bytes(0, ds.ValueSize, ds.Variables)
	dramBlocks := int(float64(ds.TotalBytes()) * 0.25 / float64(blockBytes))
	fmt.Printf("\nsingle-level replay of the same %d-request trace at %d-block capacity:\n",
		recorded.TotalRequests(), dramBlocks)
	for _, b := range []struct {
		name string
		mk   func() vizcache.Policy
	}{
		{"FIFO", func() vizcache.Policy { return vizcache.NewFIFO() }},
		{"LRU", func() vizcache.Policy { return vizcache.NewLRU() }},
		{"ARC", func() vizcache.Policy { return vizcache.NewARC(dramBlocks) }},
		{"Belady", func() vizcache.Policy { return vizcache.NewBelady(recorded.Flatten()) }},
	} {
		r := vizcache.ReplayTrace(recorded, b.mk(), dramBlocks)
		fmt.Printf("  %-6s miss rate %.4f (%d misses)\n", r.Policy, r.MissRate(), r.Misses)
	}
	fmt.Println("\nBelady needs the future; the app-aware policy approaches it using")
	fmt.Println("only the precomputed T_visible and T_important tables.")
}
