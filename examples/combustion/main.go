// Combustion: the paper's Fig. 1 scenario — interactive exploration of a
// lifted-flame combustion dataset with view-dependent camera motion and a
// data-dependent transfer-function change, rendering PNG frames along the
// way and reporting the I/O behaviour of FIFO, LRU, and the app-aware
// policy on the identical exploration.
//
// Run with:
//
//	go run ./examples/combustion [-outdir frames]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	vizcache "repro"
)

func main() {
	outdir := flag.String("outdir", "", "directory for rendered PNG frames (omit to skip rendering)")
	flag.Parse()

	// lifted_rr at laptop scale, partitioned like the paper's Fig. 11
	// setup (1024 blocks).
	ds := vizcache.LiftedRR().Scale(0.125)
	fmt.Printf("dataset %s %v\n", ds.Name, ds.Res)

	// Exploration: orbit the flame, then zoom toward the flame base —
	// the view-dependent operations of Fig. 1(a)-(c).
	orbit := vizcache.SphericalPath(3, 8, 60)
	zoom := vizcache.ZoomPath(vizcache.Vec(1, 0.4, 0.6), 3.4, 2.2, 30)
	path := vizcache.Path{Name: "orbit+zoom", Steps: append(orbit.Steps, zoom.Steps...)}

	viewer, err := vizcache.NewViewer(ds, vizcache.ViewerOptions{
		Blocks:       1024,
		TransferFunc: vizcache.Hot,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, pos := range path.Steps {
		st := viewer.Goto(pos)
		if st.Step%20 == 0 {
			fmt.Printf("step %3d: %3d visible, I/O %8v, %3d prefetched\n",
				st.Step, st.VisibleBlocks, st.IOTime, st.Prefetches)
		}
		if *outdir != "" && st.Step%20 == 0 {
			if err := writeFrame(viewer, *outdir, st.Step); err != nil {
				log.Fatal(err)
			}
		}
	}
	m := viewer.Metrics()
	fmt.Printf("\napp-aware: miss rate %.4f, demand I/O %v, prefetch %v\n",
		m.MissRate, m.IOTime, m.PrefetchTime)

	// Identical exploration under the conventional policies.
	g, err := ds.GridWithBlockCount(1024)
	if err != nil {
		log.Fatal(err)
	}
	cfg := vizcache.SimConfig{
		Dataset: ds, Grid: g, Path: path,
		ViewAngle: 0.1745, CacheRatio: 0.5,
	}
	for _, b := range []struct {
		name string
		mk   func() vizcache.Policy
	}{
		{"FIFO", func() vizcache.Policy { return vizcache.NewFIFO() }},
		{"LRU", func() vizcache.Policy { return vizcache.NewLRU() }},
	} {
		r, err := vizcache.RunBaseline(cfg, b.mk, b.name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s: miss rate %.4f, demand I/O %v\n", b.name, r.MissRate, r.IOTime)
	}

	// Data-dependent operation (Fig. 1 d/e): an iso-surface view of the
	// flame sheet. The transfer-function change needs the full-resolution
	// visible blocks — exactly the access pattern the policy serves.
	iso, err := vizcache.NewViewer(ds, vizcache.ViewerOptions{
		Blocks:       1024,
		TransferFunc: vizcache.Isosurface(0.42, 0.06, vizcache.Hot),
	})
	if err != nil {
		log.Fatal(err)
	}
	iso.Goto(vizcache.Vec(0, 0, 3))
	if *outdir != "" {
		if err := writeNamed(iso, filepath.Join(*outdir, "isosurface.png")); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nframes written to %s\n", *outdir)
	}
}

func writeFrame(v *vizcache.Viewer, dir string, step int) error {
	return writeNamed(v, filepath.Join(dir, fmt.Sprintf("frame_%03d.png", step)))
}

func writeNamed(v *vizcache.Viewer, name string) error {
	if err := os.MkdirAll(filepath.Dir(name), 0o755); err != nil {
		return err
	}
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return v.RenderPNG(f, 320, 240)
}
