// Timeplayback: animating through a time-varying dataset (the paper's
// §III-A "time-varying" data; related work [14], T-BON). Each frame
// advances one timestep, so every block is new data and plain LRU caching
// is useless — the demand I/O of the whole visible set lands on the frame's
// critical path. Prefetching the *next* timestep's high-entropy visible
// blocks while the current frame renders (the temporal analogue of the
// paper's vicinal prediction) hides almost all of it.
//
// Run with:
//
//	go run ./examples/timeplayback
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/memhier"
	"repro/internal/render"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

func main() {
	base := volume.ByName("lifted_rr").Scale(0.125)
	const timesteps = 40
	ts, err := volume.NewTimeSeries(base, timesteps, 0xbeef)
	if err != nil {
		log.Fatal(err)
	}
	g, err := ts.Grid(grid.DivisionsFor(ts.Res, 512))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("series %s: %d timesteps of %v (%d blocks each)\n",
		ts.Name, ts.Timesteps, ts.Res, g.NumBlocks())

	theta := vec.Radians(10)
	cam := camera.Camera{Pos: vec.New(0.6, 0.5, 2.8), ViewAngle: theta}
	visible := visibility.VisibleSet(g, cam)
	fmt.Printf("fixed camera sees %d blocks per frame\n\n", len(visible))

	// Importance per timestep (in a live pipeline each timestep's table is
	// built in situ as the simulation writes it).
	imps := make([]*entropy.Table, timesteps)
	for t := 0; t < timesteps; t++ {
		imps[t] = entropy.Build(ts.At(t), g, entropy.Options{MaxSamplesPerAxis: 4})
	}

	nBlocks := g.NumBlocks()
	gid := func(t int, id grid.BlockID) grid.BlockID {
		return grid.BlockID(t*nBlocks + int(id))
	}
	model := render.DefaultCostModel()

	for _, prefetch := range []bool{false, true} {
		h, err := memhier.New(
			memhier.StandardConfig(ts.At(0).TotalBytes(), 0.5,
				func() cache.Policy { return cache.NewLRU() }),
			func(id grid.BlockID) int64 {
				return g.Bytes(grid.BlockID(int(id)%nBlocks), ts.ValueSize, ts.Variables)
			},
		)
		if err != nil {
			log.Fatal(err)
		}
		var io, total time.Duration
		for t := 0; t < timesteps; t++ {
			before := h.DemandTime
			for _, id := range visible {
				h.Get(gid(t, id))
			}
			stepIO := h.DemandTime - before
			renderT := model.FrameTime(len(visible))
			overlapped := renderT
			if prefetch && t+1 < timesteps {
				sigma := imps[t+1].ThresholdForQuantile(0.9)
				pBefore := h.PrefetchTime
				for _, id := range visible {
					if imps[t+1].Score(id) > sigma {
						h.Prefetch(gid(t+1, id))
					}
				}
				if pf := h.PrefetchTime - pBefore; pf > overlapped {
					overlapped = pf
				}
			}
			io += stepIO
			total += stepIO + overlapped
		}
		mode := "plain LRU          "
		if prefetch {
			mode = "temporal prefetch  "
		}
		fmt.Printf("%s miss %.3f, demand I/O %12v, playback total %v\n",
			mode, h.TotalMissRate(), io.Round(time.Millisecond), total.Round(time.Millisecond))
	}
	fmt.Println("\nthe temporal prefetcher hides next-timestep I/O behind rendering,")
	fmt.Println("the same overlap the paper exploits spatially for camera motion.")
}
