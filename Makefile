# Pre-PR checks. `make check` is the gate: vet, build, full tests, the race
# detector over the concurrent real-I/O packages, the fuzz seed corpus, a
# chaos smoke over the failure-model paths, a one-iteration bench smoke so
# benchmark code can't rot, and the frame-path perf gates against the
# committed baseline.
GO ?= go

RACE_PKGS := ./internal/store/... ./internal/ooc/... ./internal/faultio/... ./internal/visibility/... ./internal/blocksvc/... ./internal/netchaos/... ./internal/obs/... ./internal/testutil/... ./internal/tier/... ./internal/shard/... ./internal/camera/... ./internal/loadgen/... ./cmd/vizserver/...

# The hot-path packages whose numbers are tracked in results/BENCH_ooc.json.
BENCH_PKGS := ./internal/ooc/... ./internal/store/... ./internal/blocksvc/... ./internal/tier/... ./internal/shard/... ./internal/camera/...

# Packages with fuzz targets; fuzz-smoke replays their seed corpora.
FUZZ_PKGS := ./internal/blocksvc/...

# The lifecycle/failure-model suite: failover, drain, heartbeats, breaker,
# and the two-replica network-chaos end-to-end run.
CHAOS_TESTS := 'TestChaos|TestBreaker|TestFailover|TestDrain|TestHandshakeWriteDeadline|TestServerDetectsDeadPeer|TestClientDetectsDeadServer|TestKeepalive|TestChecksumFaultsDontFailover|TestCloseConcurrentWithReads'

.PHONY: check vet build test race chaos chaos-smoke spill-smoke pipe-smoke cluster-smoke load load-smoke fuzz-smoke bench bench-all bench-smoke bench-check

check: vet build test race chaos-smoke spill-smoke pipe-smoke cluster-smoke load-smoke fuzz-smoke bench-smoke bench-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# chaos runs the failure-model suite under the race detector, repeated to
# shake out interleavings: replica kill/restart, graceful drain, dead-peer
# detection, breaker transitions, and wire corruption via netchaos.
chaos:
	$(GO) test -race -count=5 -run=$(CHAOS_TESTS) ./internal/blocksvc/
	$(GO) test -race -count=5 ./internal/netchaos/

# chaos-smoke is the single-pass version for the check gate.
chaos-smoke:
	$(GO) test -race -count=1 -run=$(CHAOS_TESTS) ./internal/blocksvc/
	$(GO) test -race -count=1 ./internal/netchaos/

# spill-smoke runs the persistent-tier crash-recovery and disk-fault
# degradation end-to-ends (plus the cross-stack policy parity pin) under
# the race detector: kill-mid-spill recovery, quarantine, breaker trip and
# heal must all survive every commit.
spill-smoke:
	$(GO) test -race -count=1 -run='EndToEnd|TestPolicyParity|TestRescan|TestBreaker' ./internal/tier/

# pipe-smoke runs the protocol-v4 wire-path suite under the race detector:
# v3 interop, the compression codec round-trip, pipelined batches
# multiplexed over one conn, the mid-response stall failover scope, and the
# lying-compressed-header allocation bound.
pipe-smoke:
	$(GO) test -race -count=1 -run='TestProtocolV3Interop|TestCompressionRoundTrip|TestPipelined|TestStallMidResponse|TestLyingFlateHeader' ./internal/blocksvc/

# cluster-smoke runs the sharded-cluster suite under the race detector: a
# 3-node in-process cluster with client-side consistent-hash routing, one
# node killed mid-orbit and the map rebalanced by a live topology push —
# every frame must stay error-free, plus the redirect/drain/v3 wire pins.
cluster-smoke:
	$(GO) test -race -count=1 -run='TestCluster' ./internal/blocksvc/
	$(GO) test -race -count=1 ./internal/shard/

# bench records the tracked hot-path numbers to results/BENCH_ooc.json (and
# echoes the raw output). Commit the JSON when the numbers move.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' $(BENCH_PKGS) | $(GO) run ./cmd/benchjson -out results/BENCH_ooc.json

# bench-all runs every benchmark in the repo without recording.
bench-all:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# bench-smoke compiles and runs every tracked benchmark for one iteration:
# fast enough for the check gate, enough to catch bit-rotted bench code.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' $(BENCH_PKGS) >/dev/null

# bench-check is the perf gate: rerun the frame hot paths — local and remote
# — and fail if ns/op regressed more than 25% past the committed baseline.
# Re-record with `make bench` (and commit the JSON) when a deliberate change
# moves them. The remote gate proves protocol-v3 liveness costs nothing on
# the steady-state demand path.
bench-check:
	$(GO) test -bench='^BenchmarkFrame$$' -benchmem -run='^$$' ./internal/ooc/ | $(GO) run ./cmd/benchjson -check results/BENCH_ooc.json -max-regress 25
	$(GO) test -bench='^BenchmarkRemoteFrame$$' -benchmem -run='^$$' ./internal/blocksvc/ | $(GO) run ./cmd/benchjson -check results/BENCH_ooc.json -max-regress 25
	$(GO) test -bench='^BenchmarkShardedRemoteFrame$$' -benchmem -run='^$$' ./internal/blocksvc/ | $(GO) run ./cmd/benchjson -check results/BENCH_ooc.json -max-regress 25
	$(GO) test -bench='^BenchmarkTieredFrame$$' -benchmem -run='^$$' ./internal/tier/ | $(GO) run ./cmd/benchjson -check results/BENCH_ooc.json -max-regress 25
	$(GO) test -bench='^BenchmarkPredict$$' -benchmem -run='^$$' ./internal/camera/ | $(GO) run ./cmd/benchjson -check results/BENCH_ooc.json -max-regress 25

# load records the multi-user capacity curve — p50/p95/p99 frame latency,
# shed rate, prefetch-hit ratio vs session count — to results/LOADGEN.json.
# Deterministic in the seed; commit the JSON when the curve moves.
load:
	$(GO) run ./cmd/loadgen -seed 1 -sessions 4,16,64 -frames 48 -out results/LOADGEN.json

# load-smoke is the check-gate version: the predictive-prefetch and harness
# suites under the race detector, then a small real fleet through the CLI —
# zero frame errors and a well-formed report or the gate fails.
load-smoke:
	$(GO) test -race -count=1 ./internal/loadgen/ ./internal/camera/
	$(GO) run ./cmd/loadgen -sessions 2,8 -frames 8 -smoke

# fuzz-smoke replays each fuzz target's seed corpus as ordinary tests, so a
# decoder change that panics on a known-interesting input fails the gate.
fuzz-smoke:
	$(GO) test -run='^Fuzz' $(FUZZ_PKGS)
