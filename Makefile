# Pre-PR checks. `make check` is the gate: vet, build, full tests, and the
# race detector over the concurrent real-I/O packages.
GO ?= go

RACE_PKGS := ./internal/store/... ./internal/ooc/... ./internal/faultio/...

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
