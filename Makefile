# Pre-PR checks. `make check` is the gate: vet, build, full tests, the race
# detector over the concurrent real-I/O packages, and a one-iteration bench
# smoke so benchmark code can't rot.
GO ?= go

RACE_PKGS := ./internal/store/... ./internal/ooc/... ./internal/faultio/... ./internal/visibility/... ./internal/blocksvc/... ./cmd/vizserver/...

# The hot-path packages whose numbers are tracked in results/BENCH_ooc.json.
BENCH_PKGS := ./internal/ooc/... ./internal/store/... ./internal/blocksvc/...

.PHONY: check vet build test race bench bench-all bench-smoke

check: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# bench records the tracked hot-path numbers to results/BENCH_ooc.json (and
# echoes the raw output). Commit the JSON when the numbers move.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' $(BENCH_PKGS) | $(GO) run ./cmd/benchjson -out results/BENCH_ooc.json

# bench-all runs every benchmark in the repo without recording.
bench-all:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# bench-smoke compiles and runs every tracked benchmark for one iteration:
# fast enough for the check gate, enough to catch bit-rotted bench code.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' $(BENCH_PKGS) >/dev/null
