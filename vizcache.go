// Package vizcache is an application-aware data replacement and prefetching
// library for interactive large-scale scientific visualization, reproducing
// Yu, Yu, Jiang & Wang, "An Application-Aware Data Replacement Policy for
// Interactive Large-Scale Scientific Visualization" (IPPS 2017).
//
// The library partitions volumetric datasets into blocks, predicts the
// blocks a camera will need from a precomputed visibility table (T_visible,
// §IV-B), ranks block importance by Shannon entropy (T_important, §IV-C),
// and drives a multi-level memory hierarchy with Algorithm 1: demand
// fetching with LRU-among-stale replacement plus entropy-filtered
// prefetching overlapped with rendering.
//
// Quick start:
//
//	ds := vizcache.Ball().Scale(0.125)
//	v, err := vizcache.NewViewer(ds, vizcache.ViewerOptions{Blocks: 1024})
//	if err != nil { ... }
//	for _, pos := range vizcache.SphericalPath(3, 5, 100).Steps {
//	    stats := v.Goto(pos)
//	    fmt.Println(stats.IOTime, stats.VisibleBlocks)
//	}
//	fmt.Println(v.Metrics().MissRate)
//
// The packages under internal/ hold the implementation: one package per
// subsystem (see DESIGN.md for the full inventory). This package is the
// stable public surface.
package vizcache

import (
	"repro/internal/analytics"
	"repro/internal/cache"
	"repro/internal/camera"
	"repro/internal/entropy"
	"repro/internal/grid"
	"repro/internal/lod"
	"repro/internal/ooc"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/summary"
	"repro/internal/trace"
	"repro/internal/vec"
	"repro/internal/visibility"
	"repro/internal/volume"
)

// V3 is a 3-component vector: camera positions and world coordinates.
type V3 = vec.V3

// Vec constructs a V3.
func Vec(x, y, z float64) V3 { return vec.New(x, y, z) }

// Dataset describes a volumetric dataset (resolution, variables, field).
type Dataset = volume.Dataset

// Grid is a uniform block partition of a dataset.
type Grid = grid.Grid

// BlockID identifies one block of a Grid.
type BlockID = grid.BlockID

// Dims is a voxel extent.
type Dims = grid.Dims

// Path is a camera trajectory.
type Path = camera.Path

// Camera is a view point looking at the volume center.
type Camera = camera.Camera

// Metrics summarizes a simulation run.
type Metrics = sim.Metrics

// SimConfig describes a simulation run (dataset, grid, path, cache ratio).
type SimConfig = sim.Config

// AppAwareConfig carries the app-aware policy's inputs for RunAppAware.
type AppAwareConfig = sim.AppAwareConfig

// ImportanceTable is the entropy ranking T_important.
type ImportanceTable = entropy.Table

// VisibilityTable is the camera-sampling lookup table T_visible.
type VisibilityTable = visibility.Table

// VisibilityOptions configures T_visible construction.
type VisibilityOptions = visibility.Options

// Policy is a replacement policy over blocks.
type Policy = cache.Policy

// TransferFunc maps normalized values to RGBA for rendering.
type TransferFunc = render.TransferFunc

// Table I datasets (synthetic stand-ins at the paper's resolutions; see
// DESIGN.md §2 for the substitution rationale).
var (
	// Ball returns the synthetic 3d_ball dataset (1024³).
	Ball = volume.Ball
	// LiftedMixFrac returns the combustion mixture-fraction dataset.
	LiftedMixFrac = volume.LiftedMixFrac
	// LiftedRR returns the combustion reaction-rate dataset.
	LiftedRR = volume.LiftedRR
	// Climate returns the 244-variable climate dataset.
	Climate = volume.Climate
	// Datasets returns all Table I datasets.
	Datasets = volume.Catalog
	// DatasetByName returns a Table I dataset by name, or nil.
	DatasetByName = volume.ByName
)

// Replacement-policy constructors for baselines and ablations.
var (
	// NewFIFO returns a first-in-first-out policy.
	NewFIFO = cache.NewFIFO
	// NewLRU returns a least-recently-used policy.
	NewLRU = cache.NewLRU
	// NewClock returns a second-chance (CLOCK) policy.
	NewClock = cache.NewClock
	// NewLFU returns a least-frequently-used policy.
	NewLFU = cache.NewLFU
	// NewARC returns an adaptive replacement cache with the given
	// entry-count adaptation scale.
	NewARC = cache.NewARC
	// NewBelady returns the offline-optimal policy for a known trace.
	NewBelady = cache.NewBelady
)

// Camera-path generators (§V-A's two path families plus extras).
var (
	// SphericalPath orbits with a fixed per-step degree interval.
	SphericalPath = camera.Spherical
	// RandomPath wanders with bounded random per-step direction changes.
	RandomPath = camera.Random
	// ZoomPath flies from far to near along a direction.
	ZoomPath = camera.Zoom
	// OrbitPath is a single great-circle orbit.
	OrbitPath = camera.Orbit
)

// Simulation entry points.
var (
	// RunBaseline simulates a path under a conventional policy.
	RunBaseline = sim.RunBaseline
	// RunAppAware simulates a path under the paper's Algorithm 1.
	RunAppAware = sim.RunAppAware
)

// BuildImportance computes the T_important entropy ranking for a dataset's
// blocks (§IV-C).
func BuildImportance(ds *Dataset, g *Grid) *ImportanceTable {
	return entropy.Build(ds, g, entropy.Options{})
}

// NewVisibilityTable builds T_visible over the grid (§IV-B).
func NewVisibilityTable(g *Grid, opts VisibilityOptions) (*VisibilityTable, error) {
	return visibility.NewTable(g, opts)
}

// Table persistence: both tables are one-time pre-processing products
// (Fig. 5, Steps 1–2); cmd/tablegen builds and saves them, sessions reload
// them with these functions.
var (
	// LoadImportance reads a T_important written by ImportanceTable.Save.
	LoadImportance = entropy.Load
	// LoadVisibility reads a T_visible written by VisibilityTable.Save;
	// the grid must match the one the table was built over.
	LoadVisibility = visibility.Load
)

// VisibleBlocks returns the exact set of blocks visible from a camera.
func VisibleBlocks(g *Grid, cam Camera) []BlockID {
	return visibility.VisibleSet(g, cam)
}

// Trace is a recorded block-request stream (one group per view point).
type Trace = trace.Trace

// ReplayResult summarizes a trace replay against a single-level cache.
type ReplayResult = trace.ReplayResult

// ReplayTrace runs a recorded trace against a policy with the given block
// capacity — the harness for comparing online policies with Belady's
// offline optimum on identical request streams.
var ReplayTrace = trace.Replay

// Data-dependent analysis operations (the paper's Fig. 3 histograms and
// correlation matrices over the regions seen from a view).
var (
	// RegionHistogram builds a histogram of one variable over blocks.
	RegionHistogram = analytics.RegionHistogram
	// CorrelationMatrix computes pairwise Pearson correlations of
	// variables over blocks.
	CorrelationMatrix = analytics.CorrelationMatrix
	// RegionStats summarizes one variable over blocks.
	RegionStats = analytics.RegionStats
)

// Transfer functions for the renderer.
var (
	// Grayscale maps value to brightness.
	Grayscale = render.Grayscale
	// Hot is a black-red-yellow-white combustion map.
	Hot = render.Hot
	// CoolWarm is a diverging blue-white-red map.
	CoolWarm = render.CoolWarm
	// Isosurface highlights a value band (iso, width) over a base map.
	Isosurface = render.Isosurface
)

// Real-I/O out-of-core substrate (non-simulated; see examples/realio).
type (
	// BlockFile is a block-layout data file with random-access reads.
	BlockFile = store.BlockFile
	// MemCache is a byte-budgeted in-memory block cache over a BlockFile.
	MemCache = store.MemCache
	// OOCRuntime is the concurrent fetch+prefetch runtime (paper §VI).
	OOCRuntime = ooc.Runtime
	// OOCOptions configures OOCRuntime workers and queues.
	OOCOptions = ooc.Options
)

var (
	// WriteBlockFile materializes one dataset variable in block layout.
	WriteBlockFile = store.Write
	// OpenBlockFile opens a block-layout file.
	OpenBlockFile = store.Open
	// NewMemCache wraps a BlockFile with a policy-managed cache.
	NewMemCache = store.NewMemCache
	// NewOOCRuntime starts the concurrent out-of-core runtime.
	NewOOCRuntime = ooc.New
)

// Query-based visualization (§III-A; per-block summaries answer range
// queries without touching voxel data).
type (
	// SummaryTable holds per-block min/max/mean summaries.
	SummaryTable = summary.Table
	// Query is a conjunction of per-variable range predicates.
	Query = summary.Query
	// Predicate is one range condition on one variable.
	Predicate = summary.Predicate
)

// BuildSummaries computes per-block value summaries for the variables (all
// when vars is nil).
func BuildSummaries(ds *Dataset, g *Grid, vars []int) (*SummaryTable, error) {
	return summary.Build(ds, g, vars, summary.Options{})
}

// AutoTransfer derives an opacity-equalized transfer function from
// histogram counts (rare values stay visible).
var AutoTransfer = render.AutoTransfer

// Multi-resolution substrate (the §III-B related-work approach; quantified
// against the app-aware policy by `cmd/repro -exp ext-lod`).
type (
	// Pyramid is a multi-resolution stack over a dataset.
	Pyramid = lod.Pyramid
	// LODRef names one block of one pyramid level.
	LODRef = lod.Ref
)

// NewPyramid builds a level-of-detail pyramid.
var NewPyramid = lod.NewPyramid
